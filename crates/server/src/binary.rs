//! The compact binary envelope encoding (PROTOCOL.md §5).
//!
//! This is the payload format of binary frames ([`crate::frame`] §4): a
//! hand-rolled, dependency-free encoding of [`RequestEnvelope`] /
//! [`ResponseEnvelope`] built from five primitives (§5.1) — `u8` tags,
//! little-endian `u32`/`u64`, IEEE-754 `f64` bit patterns, and
//! length-prefixed UTF-8 strings. No field names travel on the wire;
//! layout is fixed per tag, which is what makes it roughly an order of
//! magnitude cheaper to encode/decode than the JSON path.
//!
//! Equivalence contract: for every envelope the JSON codec can carry,
//! `decode(encode(x)) == x`, and the decoded value re-encodes through
//! the JSON path **bit-identically** to the original's JSON — the
//! `codec_fuzz` suite pins this. The one divergence is deliberate:
//! binary `f64`s preserve exact bits, so non-finite floats survive here
//! while the JSON path turns them into `null` (§5.1); the service
//! rejects them either way.
//!
//! Every malformed input is a typed [`BinError`] — truncation, unknown
//! tags, trailing bytes, over-deep batch nesting — never a panic: this
//! decoder sits on the listening side of the wire.

use crate::wire::{RequestEnvelope, ResponseEnvelope};
use botwork::BotId;
use simcore::SimTime;
use spequlos::credit::CreditError;
use spequlos::oracle::{DeployMode, Prediction, Provisioning, StrategyCombo, Trigger};
use spequlos::protocol::{Request, RequestError, Response};
use spequlos::{BotProgress, UserId};
use std::fmt;

/// Batch nesting depth the decoder accepts (§5.3). The service rejects
/// any nested batch at dispatch, but the decoder must bound recursion
/// *before* dispatch so a hostile frame cannot overflow the stack.
pub const MAX_BATCH_DEPTH: usize = 8;

/// Why a binary envelope could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The payload ended inside the named field.
    Truncated(&'static str),
    /// An unknown tag byte in the named position.
    BadTag(&'static str, u8),
    /// A string field is not valid UTF-8.
    NotUtf8(&'static str),
    /// Bytes remain after a complete envelope (§5.2: a frame carries
    /// exactly one envelope).
    Trailing(usize),
    /// Batches nest deeper than [`MAX_BATCH_DEPTH`].
    TooDeep,
    /// A declared length or count exceeds the payload that carries it.
    Oversized(&'static str),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Truncated(ctx) => write!(f, "payload ended inside {ctx}"),
            BinError::BadTag(ctx, tag) => write!(f, "unknown {ctx} tag 0x{tag:02x}"),
            BinError::NotUtf8(ctx) => write!(f, "{ctx} is not UTF-8"),
            BinError::Trailing(n) => write!(f, "{n} trailing bytes after the envelope"),
            BinError::TooDeep => write!(f, "batches nest deeper than {MAX_BATCH_DEPTH}"),
            BinError::Oversized(ctx) => {
                write!(f, "{ctx} declares more bytes than the payload holds")
            }
        }
    }
}

impl std::error::Error for BinError {}

// ---------------------------------------------------------------------------
// Primitive writers (§5.1)
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Primitive reader (§5.1)
// ---------------------------------------------------------------------------

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize, ctx: &'static str) -> Result<&'a [u8], BinError> {
        let end = self.pos.checked_add(n).ok_or(BinError::Truncated(ctx))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or(BinError::Truncated(ctx))?;
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, ctx: &'static str) -> Result<u8, BinError> {
        self.bytes(1, ctx)?
            .first()
            .copied()
            .ok_or(BinError::Truncated(ctx))
    }

    fn u32(&mut self, ctx: &'static str) -> Result<u32, BinError> {
        let b: [u8; 4] = self
            .bytes(4, ctx)?
            .try_into()
            .map_err(|_| BinError::Truncated(ctx))?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, ctx: &'static str) -> Result<u64, BinError> {
        let b: [u8; 8] = self
            .bytes(8, ctx)?
            .try_into()
            .map_err(|_| BinError::Truncated(ctx))?;
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self, ctx: &'static str) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.u64(ctx)?))
    }

    fn str(&mut self, ctx: &'static str) -> Result<String, BinError> {
        let len = self.u32(ctx)? as usize;
        if len > self.buf.len() - self.pos {
            return Err(BinError::Oversized(ctx));
        }
        String::from_utf8(self.bytes(len, ctx)?.to_vec()).map_err(|_| BinError::NotUtf8(ctx))
    }

    /// A sequence count, sanity-bounded by the bytes that remain: every
    /// element costs at least one byte, so a count beyond that is a lie
    /// and is refused before any allocation sized by it.
    fn count(&mut self, ctx: &'static str) -> Result<usize, BinError> {
        let n = self.u32(ctx)? as usize;
        if n > self.buf.len() - self.pos {
            return Err(BinError::Oversized(ctx));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), BinError> {
        match self.buf.len() - self.pos {
            0 => Ok(()),
            n => Err(BinError::Trailing(n)),
        }
    }
}

// ---------------------------------------------------------------------------
// Request tags (§5.3) and response tags (§5.5)
// ---------------------------------------------------------------------------

const REQ_DEPOSIT: u8 = 0x01;
const REQ_REGISTER_QOS: u8 = 0x02;
const REQ_ORDER_QOS: u8 = 0x03;
const REQ_PREDICT: u8 = 0x04;
const REQ_REPORT_PROGRESS: u8 = 0x05;
const REQ_COMPLETE: u8 = 0x06;
const REQ_BATCH: u8 = 0x07;

const RESP_DEPOSITED: u8 = 0x81;
const RESP_REGISTERED: u8 = 0x82;
const RESP_ORDERED: u8 = 0x83;
const RESP_PREDICTED: u8 = 0x84;
const RESP_ACTION: u8 = 0x85;
const RESP_COMPLETED: u8 = 0x86;
const RESP_BATCH: u8 = 0x87;
const RESP_ERROR: u8 = 0x88;

const ERR_CREDIT: u8 = 0x00;
const ERR_UNKNOWN_BOT: u8 = 0x01;
const ERR_INVALID: u8 = 0x02;
const ERR_TRANSPORT: u8 = 0x03;

// ---------------------------------------------------------------------------
// Composites (§5.6)
// ---------------------------------------------------------------------------

fn put_opt<T>(out: &mut Vec<u8>, v: &Option<T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => out.push(0x00),
        Some(inner) => {
            out.push(0x01);
            put(out, inner);
        }
    }
}

fn read_opt<T>(
    rd: &mut Rd<'_>,
    ctx: &'static str,
    read: impl FnOnce(&mut Rd<'_>) -> Result<T, BinError>,
) -> Result<Option<T>, BinError> {
    match rd.u8(ctx)? {
        0x00 => Ok(None),
        0x01 => Ok(Some(read(rd)?)),
        tag => Err(BinError::BadTag(ctx, tag)),
    }
}

fn put_strategy(out: &mut Vec<u8>, s: &StrategyCombo) {
    match s.trigger {
        Trigger::CompletionThreshold(t) => {
            out.push(0x00);
            put_f64(out, t);
        }
        Trigger::AssignmentThreshold(t) => {
            out.push(0x01);
            put_f64(out, t);
        }
        Trigger::ExecutionVariance => out.push(0x02),
        Trigger::RateDrop { fraction } => {
            out.push(0x03);
            put_f64(out, fraction);
        }
    }
    out.push(match s.provisioning {
        Provisioning::Greedy => 0x00,
        Provisioning::Conservative => 0x01,
    });
    out.push(match s.deployment {
        DeployMode::Flat => 0x00,
        DeployMode::Reschedule => 0x01,
        DeployMode::CloudDuplication => 0x02,
    });
}

fn read_strategy(rd: &mut Rd<'_>) -> Result<StrategyCombo, BinError> {
    let trigger = match rd.u8("strategy trigger")? {
        0x00 => Trigger::CompletionThreshold(rd.f64("completion threshold")?),
        0x01 => Trigger::AssignmentThreshold(rd.f64("assignment threshold")?),
        0x02 => Trigger::ExecutionVariance,
        0x03 => Trigger::RateDrop {
            fraction: rd.f64("rate-drop fraction")?,
        },
        tag => return Err(BinError::BadTag("strategy trigger", tag)),
    };
    let provisioning = match rd.u8("provisioning")? {
        0x00 => Provisioning::Greedy,
        0x01 => Provisioning::Conservative,
        tag => return Err(BinError::BadTag("provisioning", tag)),
    };
    let deployment = match rd.u8("deployment")? {
        0x00 => DeployMode::Flat,
        0x01 => DeployMode::Reschedule,
        0x02 => DeployMode::CloudDuplication,
        tag => return Err(BinError::BadTag("deployment", tag)),
    };
    Ok(StrategyCombo {
        trigger,
        provisioning,
        deployment,
    })
}

fn put_progress(out: &mut Vec<u8>, p: &BotProgress) {
    put_u64(out, p.now.as_millis());
    put_u32(out, p.size);
    put_u32(out, p.completed);
    put_u32(out, p.dispatched);
    put_u32(out, p.queued);
    put_u32(out, p.running);
    put_u32(out, p.cloud_running);
}

fn read_progress(rd: &mut Rd<'_>) -> Result<BotProgress, BinError> {
    Ok(BotProgress {
        now: SimTime::from_millis(rd.u64("progress.now")?),
        size: rd.u32("progress.size")?,
        completed: rd.u32("progress.completed")?,
        dispatched: rd.u32("progress.dispatched")?,
        queued: rd.u32("progress.queued")?,
        running: rd.u32("progress.running")?,
        cloud_running: rd.u32("progress.cloud_running")?,
    })
}

fn put_prediction(out: &mut Vec<u8>, p: &Prediction) {
    put_f64(out, p.completion_secs);
    put_f64(out, p.alpha);
    put_opt(out, &p.success_rate, |out, &rate| put_f64(out, rate));
}

fn read_prediction(rd: &mut Rd<'_>) -> Result<Prediction, BinError> {
    Ok(Prediction {
        completion_secs: rd.f64("prediction.completion_secs")?,
        alpha: rd.f64("prediction.alpha")?,
        success_rate: read_opt(rd, "prediction.success_rate", |rd| {
            rd.f64("prediction.success_rate")
        })?,
    })
}

// ---------------------------------------------------------------------------
// Requests (§5.3)
// ---------------------------------------------------------------------------

fn put_request(out: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Deposit { user, credits } => {
            out.push(REQ_DEPOSIT);
            put_u64(out, user.0);
            put_f64(out, *credits);
        }
        Request::RegisterQos { user, env, size } => {
            out.push(REQ_REGISTER_QOS);
            put_u64(out, user.0);
            put_str(out, env);
            put_u32(out, *size);
        }
        Request::OrderQos {
            bot,
            credits,
            strategy,
        } => {
            out.push(REQ_ORDER_QOS);
            put_u64(out, bot.0);
            put_f64(out, *credits);
            put_opt(out, strategy, put_strategy);
        }
        Request::Predict { bot } => {
            out.push(REQ_PREDICT);
            put_u64(out, bot.0);
        }
        Request::ReportProgress { bot, progress } => {
            out.push(REQ_REPORT_PROGRESS);
            put_u64(out, bot.0);
            put_progress(out, progress);
        }
        Request::Complete { bot } => {
            out.push(REQ_COMPLETE);
            put_u64(out, bot.0);
        }
        Request::Batch(items) => {
            out.push(REQ_BATCH);
            put_u32(out, items.len() as u32);
            for item in items {
                put_request(out, item);
            }
        }
    }
}

fn read_request(rd: &mut Rd<'_>, depth: usize) -> Result<Request, BinError> {
    if depth > MAX_BATCH_DEPTH {
        return Err(BinError::TooDeep);
    }
    let parsed = match rd.u8("request")? {
        REQ_DEPOSIT => Request::Deposit {
            user: UserId(rd.u64("deposit.user")?),
            credits: rd.f64("deposit.credits")?,
        },
        REQ_REGISTER_QOS => Request::RegisterQos {
            user: UserId(rd.u64("register_qos.user")?),
            env: rd.str("register_qos.env")?,
            size: rd.u32("register_qos.size")?,
        },
        REQ_ORDER_QOS => Request::OrderQos {
            bot: BotId(rd.u64("order_qos.bot")?),
            credits: rd.f64("order_qos.credits")?,
            strategy: read_opt(rd, "order_qos.strategy", read_strategy)?,
        },
        REQ_PREDICT => Request::Predict {
            bot: BotId(rd.u64("predict.bot")?),
        },
        REQ_REPORT_PROGRESS => Request::ReportProgress {
            bot: BotId(rd.u64("report_progress.bot")?),
            progress: read_progress(rd)?,
        },
        REQ_COMPLETE => Request::Complete {
            bot: BotId(rd.u64("complete.bot")?),
        },
        REQ_BATCH => {
            let n = rd.count("batch.items")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_request(rd, depth + 1)?);
            }
            Request::Batch(items)
        }
        tag => return Err(BinError::BadTag("request", tag)),
    };
    Ok(parsed)
}

// ---------------------------------------------------------------------------
// Responses (§5.5)
// ---------------------------------------------------------------------------

fn put_response(out: &mut Vec<u8>, response: &Response) {
    match response {
        Response::Deposited { user, balance } => {
            out.push(RESP_DEPOSITED);
            put_u64(out, user.0);
            put_f64(out, *balance);
        }
        Response::Registered { bot } => {
            out.push(RESP_REGISTERED);
            put_u64(out, bot.0);
        }
        Response::Ordered { bot } => {
            out.push(RESP_ORDERED);
            put_u64(out, bot.0);
        }
        Response::Predicted { bot, prediction } => {
            out.push(RESP_PREDICTED);
            put_u64(out, bot.0);
            put_opt(out, prediction, put_prediction);
        }
        Response::Action { bot, action } => {
            out.push(RESP_ACTION);
            put_u64(out, bot.0);
            match action {
                spequlos::scheduler::CloudAction::None => out.push(0x00),
                spequlos::scheduler::CloudAction::Start(n) => {
                    out.push(0x01);
                    put_u32(out, *n);
                }
                spequlos::scheduler::CloudAction::StopAll => out.push(0x02),
            }
        }
        Response::Completed { bot, spent, refund } => {
            out.push(RESP_COMPLETED);
            put_u64(out, bot.0);
            put_f64(out, *spent);
            put_f64(out, *refund);
        }
        Response::Batch(items) => {
            out.push(RESP_BATCH);
            put_u32(out, items.len() as u32);
            for item in items {
                put_response(out, item);
            }
        }
        Response::Error(e) => {
            out.push(RESP_ERROR);
            match e {
                RequestError::Credit(ce) => {
                    out.push(ERR_CREDIT);
                    out.push(match ce {
                        CreditError::InsufficientCredits => 0x00,
                        CreditError::NoOrder => 0x01,
                        CreditError::DuplicateOrder => 0x02,
                        CreditError::OrderClosed => 0x03,
                        CreditError::PoolSaturated => 0x04,
                    });
                }
                RequestError::UnknownBot(bot) => {
                    out.push(ERR_UNKNOWN_BOT);
                    put_u64(out, bot.0);
                }
                RequestError::Invalid(msg) => {
                    out.push(ERR_INVALID);
                    put_str(out, msg);
                }
                RequestError::Transport(msg) => {
                    out.push(ERR_TRANSPORT);
                    put_str(out, msg);
                }
            }
        }
    }
}

fn read_response(rd: &mut Rd<'_>, depth: usize) -> Result<Response, BinError> {
    if depth > MAX_BATCH_DEPTH {
        return Err(BinError::TooDeep);
    }
    let parsed = match rd.u8("response")? {
        RESP_DEPOSITED => Response::Deposited {
            user: UserId(rd.u64("deposited.user")?),
            balance: rd.f64("deposited.balance")?,
        },
        RESP_REGISTERED => Response::Registered {
            bot: BotId(rd.u64("registered.bot")?),
        },
        RESP_ORDERED => Response::Ordered {
            bot: BotId(rd.u64("ordered.bot")?),
        },
        RESP_PREDICTED => Response::Predicted {
            bot: BotId(rd.u64("predicted.bot")?),
            prediction: read_opt(rd, "predicted.prediction", read_prediction)?,
        },
        RESP_ACTION => Response::Action {
            bot: BotId(rd.u64("action.bot")?),
            action: match rd.u8("cloud action")? {
                0x00 => spequlos::scheduler::CloudAction::None,
                0x01 => spequlos::scheduler::CloudAction::Start(rd.u32("action.start")?),
                0x02 => spequlos::scheduler::CloudAction::StopAll,
                tag => return Err(BinError::BadTag("cloud action", tag)),
            },
        },
        RESP_COMPLETED => Response::Completed {
            bot: BotId(rd.u64("completed.bot")?),
            spent: rd.f64("completed.spent")?,
            refund: rd.f64("completed.refund")?,
        },
        RESP_BATCH => {
            let n = rd.count("batch.items")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_response(rd, depth + 1)?);
            }
            Response::Batch(items)
        }
        RESP_ERROR => Response::Error(match rd.u8("error code")? {
            ERR_CREDIT => RequestError::Credit(match rd.u8("credit error")? {
                0x00 => CreditError::InsufficientCredits,
                0x01 => CreditError::NoOrder,
                0x02 => CreditError::DuplicateOrder,
                0x03 => CreditError::OrderClosed,
                0x04 => CreditError::PoolSaturated,
                tag => return Err(BinError::BadTag("credit error", tag)),
            }),
            ERR_UNKNOWN_BOT => RequestError::UnknownBot(BotId(rd.u64("unknown_bot.bot")?)),
            ERR_INVALID => RequestError::Invalid(rd.str("invalid.message")?),
            ERR_TRANSPORT => RequestError::Transport(rd.str("transport.message")?),
            tag => return Err(BinError::BadTag("error code", tag)),
        }),
        tag => return Err(BinError::BadTag("response", tag)),
    };
    Ok(parsed)
}

// ---------------------------------------------------------------------------
// Envelopes (§5.2, §5.4)
// ---------------------------------------------------------------------------

/// Encodes one request envelope: `id:u64 · t:u64 (ms) · request` (§5.2).
pub fn encode_request(envelope: &RequestEnvelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, envelope.id);
    put_u64(&mut out, envelope.at.as_millis());
    put_request(&mut out, &envelope.request);
    out
}

/// Decodes a request envelope; the payload must hold exactly one (§5.2).
pub fn decode_request(payload: &[u8]) -> Result<RequestEnvelope, BinError> {
    let mut rd = Rd::new(payload);
    let envelope = RequestEnvelope {
        id: rd.u64("envelope.id")?,
        at: SimTime::from_millis(rd.u64("envelope.t")?),
        request: read_request(&mut rd, 0)?,
    };
    rd.finish()?;
    Ok(envelope)
}

/// Encodes one response envelope: `id:u64 · response` (§5.4).
pub fn encode_response(envelope: &ResponseEnvelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, envelope.id);
    put_response(&mut out, &envelope.response);
    out
}

/// Decodes a response envelope; the payload must hold exactly one (§5.4).
pub fn decode_response(payload: &[u8]) -> Result<ResponseEnvelope, BinError> {
    let mut rd = Rd::new(payload);
    let envelope = ResponseEnvelope {
        id: rd.u64("envelope.id")?,
        response: read_response(&mut rd, 0)?,
    };
    rd.finish()?;
    Ok(envelope)
}

/// Best-effort correlation id of a binary payload that failed to decode
/// — the envelope id travels first (§5.2), so eight readable bytes are
/// enough. The binary twin of [`crate::wire::peek_id`].
pub fn peek_id(payload: &[u8]) -> Option<u64> {
    payload.first_chunk::<8>().map(|b| u64::from_le_bytes(*b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Deposit {
                user: UserId(1),
                credits: 1000.5,
            },
            Request::RegisterQos {
                user: UserId(u64::MAX),
                env: "g5klyo/XWHEP/BIG ünïcodé".into(),
                size: 1000,
            },
            Request::OrderQos {
                bot: BotId(0),
                credits: 150.0,
                strategy: Some(StrategyCombo::parse("9A-G-D").unwrap()),
            },
            Request::OrderQos {
                bot: BotId(1),
                credits: 10.0,
                strategy: None,
            },
            Request::Predict { bot: BotId(0) },
            Request::ReportProgress {
                bot: BotId(3),
                progress: BotProgress {
                    now: SimTime::from_secs(61),
                    size: 100,
                    completed: 7,
                    dispatched: 100,
                    queued: 2,
                    running: 91,
                    cloud_running: 2,
                },
            },
            Request::Complete { bot: BotId(0) },
            Request::Batch(vec![
                Request::Predict { bot: BotId(0) },
                Request::Complete { bot: BotId(1) },
            ]),
            Request::Batch(vec![]),
        ]
    }

    fn sample_responses() -> Vec<Response> {
        use spequlos::scheduler::CloudAction;
        vec![
            Response::Deposited {
                user: UserId(1),
                balance: 3.25,
            },
            Response::Registered { bot: BotId(7) },
            Response::Ordered { bot: BotId(7) },
            Response::Predicted {
                bot: BotId(7),
                prediction: Some(Prediction {
                    completion_secs: 1234.5,
                    success_rate: Some(0.75),
                    alpha: 1.1,
                }),
            },
            Response::Predicted {
                bot: BotId(7),
                prediction: None,
            },
            Response::Action {
                bot: BotId(7),
                action: CloudAction::Start(5),
            },
            Response::Action {
                bot: BotId(7),
                action: CloudAction::StopAll,
            },
            Response::Action {
                bot: BotId(7),
                action: CloudAction::None,
            },
            Response::Completed {
                bot: BotId(7),
                spent: 62.5,
                refund: 87.5,
            },
            Response::Batch(vec![
                Response::Ordered { bot: BotId(7) },
                Response::Error(RequestError::Credit(CreditError::NoOrder)),
            ]),
            Response::Batch(vec![]),
            Response::Error(RequestError::Credit(CreditError::PoolSaturated)),
            Response::Error(RequestError::UnknownBot(BotId(9))),
            Response::Error(RequestError::Invalid("bad".into())),
            Response::Error(RequestError::Transport("connection reset".into())),
        ]
    }

    #[test]
    fn request_envelopes_roundtrip() {
        for (i, request) in sample_requests().into_iter().enumerate() {
            let envelope = RequestEnvelope {
                id: i as u64 * 7919,
                at: SimTime::from_millis(i as u64 * 61_000),
                request,
            };
            let bytes = encode_request(&envelope);
            let back = decode_request(&bytes).expect("decodes");
            assert_eq!(back, envelope);
            assert_eq!(encode_request(&back), bytes, "re-encode bit-identical");
        }
    }

    #[test]
    fn response_envelopes_roundtrip() {
        for (i, response) in sample_responses().into_iter().enumerate() {
            let envelope = ResponseEnvelope {
                id: i as u64,
                response,
            };
            let bytes = encode_response(&envelope);
            let back = decode_response(&bytes).expect("decodes");
            assert_eq!(back, envelope);
            assert_eq!(encode_response(&back), bytes, "re-encode bit-identical");
        }
    }

    #[test]
    fn decoded_binary_reencodes_json_identically() {
        // The §5 equivalence contract: going through the binary codec
        // must not perturb what the JSON codec would have carried.
        for (i, request) in sample_requests().into_iter().enumerate() {
            let envelope = RequestEnvelope {
                id: i as u64,
                at: SimTime::from_secs(i as u64),
                request,
            };
            let json_direct = envelope.to_json();
            let through_binary = decode_request(&encode_request(&envelope)).expect("decodes");
            assert_eq!(through_binary.to_json(), json_direct);
        }
        for (i, response) in sample_responses().into_iter().enumerate() {
            let envelope = ResponseEnvelope {
                id: i as u64,
                response,
            };
            let json_direct = envelope.to_json();
            let through_binary = decode_response(&encode_response(&envelope)).expect("decodes");
            assert_eq!(through_binary.to_json(), json_direct);
        }
    }

    #[test]
    fn layout_is_the_documented_bytes() {
        // §5.2/§5.3 worked example: Deposit{user:2, credits:1.0} at id 1,
        // t 1000 ms. 8 id bytes, 8 t bytes, tag 0x01, 8 user bytes,
        // 8 credit bytes = 33 bytes total.
        let envelope = RequestEnvelope {
            id: 1,
            at: SimTime::from_millis(1000),
            request: Request::Deposit {
                user: UserId(2),
                credits: 1.0,
            },
        };
        let bytes = encode_request(&envelope);
        assert_eq!(bytes.len(), 33);
        assert_eq!(&bytes[..8], &1u64.to_le_bytes());
        assert_eq!(&bytes[8..16], &1000u64.to_le_bytes());
        assert_eq!(bytes[16], REQ_DEPOSIT);
        assert_eq!(&bytes[17..25], &2u64.to_le_bytes());
        assert_eq!(&bytes[25..33], &1.0f64.to_bits().to_le_bytes());
    }

    #[test]
    fn truncations_error_never_panic() {
        for request in sample_requests() {
            let bytes = encode_request(&RequestEnvelope {
                id: 9,
                at: SimTime::from_secs(1),
                request,
            });
            for cut in 0..bytes.len() {
                assert!(decode_request(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
        for response in sample_responses() {
            let bytes = encode_response(&ResponseEnvelope { id: 9, response });
            for cut in 0..bytes.len() {
                assert!(decode_response(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_unknown_tags_and_lying_counts_are_rejected() {
        let mut bytes = encode_request(&RequestEnvelope {
            id: 1,
            at: SimTime::ZERO,
            request: Request::Predict { bot: BotId(2) },
        });
        bytes.push(0x00);
        assert_eq!(decode_request(&bytes), Err(BinError::Trailing(1)));

        let mut bad_tag = vec![0u8; 16];
        bad_tag.push(0xee);
        assert_eq!(
            decode_request(&bad_tag),
            Err(BinError::BadTag("request", 0xee))
        );

        // A batch claiming 4 billion items is refused before allocation.
        let mut lying = vec![0u8; 16];
        lying.push(REQ_BATCH);
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_request(&lying),
            Err(BinError::Oversized("batch.items"))
        );
    }

    #[test]
    fn over_deep_batch_nesting_is_refused() {
        // A hostile frame of nested batch tags must hit the depth cap,
        // not the stack guard (§5.3).
        let mut bytes = vec![0u8; 16];
        for _ in 0..(MAX_BATCH_DEPTH + 2) {
            bytes.push(REQ_BATCH);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(REQ_PREDICT);
        bytes.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(decode_request(&bytes), Err(BinError::TooDeep));
    }

    #[test]
    fn peek_id_reads_the_leading_eight_bytes() {
        let envelope = RequestEnvelope {
            id: 0xDEAD_BEEF,
            at: SimTime::ZERO,
            request: Request::Predict { bot: BotId(0) },
        };
        assert_eq!(peek_id(&encode_request(&envelope)), Some(0xDEAD_BEEF));
        assert_eq!(peek_id(&[1, 2, 3]), None);
    }

    #[test]
    fn non_finite_floats_survive_binary_but_not_json() {
        // §5.1: binary carries exact bits; the JSON path nulls them out.
        let envelope = RequestEnvelope {
            id: 1,
            at: SimTime::ZERO,
            request: Request::Deposit {
                user: UserId(1),
                credits: f64::INFINITY,
            },
        };
        let back = decode_request(&encode_request(&envelope)).expect("decodes");
        assert_eq!(back, envelope);
        assert!(RequestEnvelope::from_json(&envelope.to_json()).is_err());
    }
}
