//! Correlation envelopes: one request/response per frame, tagged with an
//! `id` the response echoes.
//!
//! Ids let a client pipeline several frames before reading any reply and
//! still pair replies with requests (the server answers FIFO per
//! connection, so ids double as a protocol self-check: a mismatch means
//! the stream is desynchronized and the connection must be dropped). The
//! envelope flattens into the request object — `{"id":…,"t":…,"req":…}` —
//! exactly like `spequlos::protocol::encode_session` flattens its `t`
//! tag, so envelope payloads stay line-diffable against stored session
//! transcripts.

use simcore::json::{self, Value};
use simcore::SimTime;
use spequlos::protocol::{Request, Response};

/// One request on the wire: correlation id, service time, payload.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestEnvelope {
    /// Correlation id, echoed by the response. Client-chosen; unique per
    /// connection (monotonically increasing in [`crate::RemoteService`]).
    pub id: u64,
    /// Service time the request is handled at (`SpqService::handle`'s
    /// `now`).
    pub at: SimTime,
    /// The request itself.
    pub request: Request,
}

/// One response on the wire: the request's id plus the payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseEnvelope {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// The response itself.
    pub response: Response,
}

fn envelope(head: Vec<(String, Value)>, inner: Value) -> String {
    let mut members = head;
    if let Value::Obj(m) = inner {
        members.extend(m);
    }
    Value::Obj(members).to_json()
}

impl RequestEnvelope {
    /// Serializes the envelope as one JSON object (one frame payload).
    pub fn to_json(&self) -> String {
        envelope(
            vec![
                ("id".into(), Value::Num(self.id as f64)),
                ("t".into(), Value::Num(self.at.as_millis() as f64)),
            ],
            self.request.to_value(),
        )
    }

    /// Parses a frame payload produced by [`RequestEnvelope::to_json`].
    pub fn from_json(text: &str) -> Result<RequestEnvelope, String> {
        let v = json::parse(text)?;
        Ok(RequestEnvelope {
            id: id_of(&v).ok_or("missing or invalid `id`")?,
            at: SimTime::from_millis(
                v.get("t")
                    .and_then(Value::as_u64)
                    .ok_or("missing or invalid `t`")?,
            ),
            request: Request::from_value(&v)?,
        })
    }
}

impl ResponseEnvelope {
    /// Serializes the envelope as one JSON object (one frame payload).
    pub fn to_json(&self) -> String {
        envelope(
            vec![("id".into(), Value::Num(self.id as f64))],
            self.response.to_value(),
        )
    }

    /// Parses a frame payload produced by [`ResponseEnvelope::to_json`].
    pub fn from_json(text: &str) -> Result<ResponseEnvelope, String> {
        let v = json::parse(text)?;
        Ok(ResponseEnvelope {
            id: id_of(&v).ok_or("missing or invalid `id`")?,
            response: Response::from_value(&v)?,
        })
    }
}

fn id_of(v: &Value) -> Option<u64> {
    v.get("id").and_then(Value::as_u64)
}

/// Best-effort correlation id of a frame payload that failed to decode as
/// a full envelope — lets the server echo the id on its error reply so
/// the client's pairing survives a bad request.
pub fn peek_id(text: &str) -> Option<u64> {
    json::parse(text).ok().as_ref().and_then(id_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spequlos::protocol::RequestError;
    use spequlos::UserId;

    #[test]
    fn request_envelopes_roundtrip_bit_identically() {
        let env = RequestEnvelope {
            id: 42,
            at: SimTime::from_secs(61),
            request: Request::Deposit {
                user: UserId(7),
                credits: 12.5,
            },
        };
        let text = env.to_json();
        assert_eq!(
            text,
            r#"{"id":42.0,"t":61000.0,"req":"deposit","user":7.0,"credits":12.5}"#
        );
        let back = RequestEnvelope::from_json(&text).expect("parses");
        assert_eq!(back, env);
        assert_eq!(back.to_json(), text, "re-encode bit-identical");
    }

    #[test]
    fn response_envelopes_roundtrip_bit_identically() {
        let env = ResponseEnvelope {
            id: 43,
            response: Response::Error(RequestError::Invalid("nope".into())),
        };
        let text = env.to_json();
        let back = ResponseEnvelope::from_json(&text).expect("parses");
        assert_eq!(back, env);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn missing_id_or_time_is_an_error_not_a_panic() {
        assert!(RequestEnvelope::from_json(r#"{"t":0.0,"req":"predict","bot":1.0}"#).is_err());
        assert!(RequestEnvelope::from_json(r#"{"id":1.0,"req":"predict","bot":1.0}"#).is_err());
        assert!(ResponseEnvelope::from_json(r#"{"resp":"ordered","bot":1.0}"#).is_err());
        assert!(RequestEnvelope::from_json("not json").is_err());
    }

    #[test]
    fn peek_id_recovers_ids_from_broken_envelopes() {
        assert_eq!(peek_id(r#"{"id":9.0,"req":"unknown_kind"}"#), Some(9));
        assert_eq!(peek_id(r#"{"req":"predict"}"#), None);
        assert_eq!(peek_id("garbage"), None);
    }
}
