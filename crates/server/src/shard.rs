//! Tenant-partitioned sharding: N shard reactors behind one listener.
//!
//! The PR 8 reactor serves thousands of connections from one thread —
//! but it is still *one* thread owning *one* [`SpeQuloS`], so tenant
//! count cannot scale past one core. This module partitions the service
//! by tenant: a [`ShardedServer`] runs `N` independent shard reactors
//! (each a full poll loop owning its own `SpeQuloS`, write-ahead log
//! and connection set), fronted by an accept-and-route thread.
//!
//! # Routing
//!
//! Tenant keys map to shards with no routing table
//! (see [`spequlos::tenancy`]):
//!
//! * user-keyed requests (`Deposit`, `RegisterQos`) hash the user id
//!   ([`spequlos::tenancy::shard_of_user`], a fixed SplitMix64 finalizer);
//! * bot-keyed requests route by residue ([`spequlos::tenancy::shard_of_bot`], exact
//!   because shard `i` allocates BoT ids `i, i+N, i+2N, …` — the
//!   [`SpeQuloSBuilder::shard`](spequlos::SpeQuloSBuilder::shard)
//!   stride), and the shard that owns a user registers its bots, so a
//!   tenant's whole session lands on one shard.
//!
//! The router classifies each fresh connection — hello exchange, then
//! the first complete request frame — and hands the whole connection
//! (socket, negotiated codec, buffered bytes) to the target shard over
//! a bounded SPSC mailbox. From then on that shard owns the socket and
//! serves its requests **inline**, exactly like the single reactor: no
//! cross-thread hop on the steady-state request path.
//!
//! A *mixed-tenant* connection (the harness's admin connection, a
//! multiplexing proxy) may carry requests for other shards. Those are
//! forwarded to the owning shard over its inbox and the encoded reply
//! returns through the origin shard's completion queue; a per-connection
//! reply ledger releases replies strictly in request order, so the
//! protocol's per-connection FIFO guarantee survives interleaved local
//! and forwarded requests.
//!
//! # The pool under sharding
//!
//! The shared `CloudPool` becomes per-shard quotas behind
//! [`PoolLedger`]/[`PoolLease`]: each shard's pool capacity *is* its
//! lease quota, synced before every admission decision. A rebalancer —
//! a wall-clock background thread ([`ShardConfig::rebalance_interval`])
//! or a deterministic every-K-requests trigger
//! ([`ShardConfig::rebalance_every`]) — moves slack quota toward the
//! shards holding the most outstanding QoS credits, never below the
//! floor and never below what a shard already leased, so PR 2's
//! credit-conservation and no-starvation invariants hold globally.
//!
//! # Determinism caveat
//!
//! Results are pinned **per shard count**: admission and fair-share
//! arbitration see per-shard quotas, so an `N`-shard run is
//! deterministic (same seed ⇒ same bytes) but is *not* the single-shard
//! run — changing `N` changes which orders are admitted when. The
//! single-reactor `Server::spawn` path is untouched by this module.

use crate::binary;
use crate::frame::{self, Codec, FrameError, HelloOutcome};
use crate::server::{DurabilityConfig, DurableError, DurableState, ServerConfig};
use crate::wire::{peek_id, RequestEnvelope, ResponseEnvelope};
use polling::{Event, Poller};
use spequlos::protocol::{Request, RequestError, Response, SpqService};
use spequlos::tenancy::{route_request, PoolLease, PoolLedger};
use spequlos::wal::{RecoveryReport, WalStore};
use spequlos::SpeQuloS;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Sharding knobs for [`ShardedServer`].
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of shards (≥ 1). One shard is a valid degenerate
    /// deployment: one router + one reactor, same service semantics as
    /// `Server::spawn`.
    pub shards: u32,
    /// Depth of the bounded connection-handoff mailbox from the router
    /// to each shard. The router blocks when a shard's mailbox is full
    /// — accept backpressure, not drop.
    pub mailbox_depth: usize,
    /// Minimum pool quota every shard keeps through rebalancing (the
    /// global no-starvation floor). Clamped to `capacity / shards`.
    pub quota_floor: u32,
    /// Wall-clock rebalancing cadence for the background thread, or
    /// `None` for no background rebalancer.
    pub rebalance_interval: Option<Duration>,
    /// Deterministic rebalancing: run a ledger pass after every this
    /// many handled requests (counted across all shards). This is the
    /// trigger tests and experiments use — with a serial driver it
    /// fires at exactly the same points every run.
    pub rebalance_every: Option<u64>,
}

impl ShardConfig {
    /// `shards`-way sharding with production defaults: 256-deep handoff
    /// mailboxes, quota floor 1, background rebalance every 100 ms.
    pub fn new(shards: u32) -> Self {
        ShardConfig {
            shards: shards.max(1),
            mailbox_depth: 256,
            quota_floor: 1,
            rebalance_interval: Some(Duration::from_millis(100)),
            rebalance_every: None,
        }
    }

    /// Deterministic variant: no wall-clock rebalancer; a ledger pass
    /// after every `every` handled requests instead.
    pub fn deterministic(shards: u32, every: u64) -> Self {
        ShardConfig {
            rebalance_interval: None,
            rebalance_every: Some(every.max(1)),
            ..Self::new(shards)
        }
    }
}

/// A connection the router classified and is handing to its shard.
struct Handoff {
    stream: TcpStream,
    /// Bytes read but not yet decoded (the first request frame is still
    /// in here — the shard decodes and serves it).
    rbuf: Vec<u8>,
    codec: Codec,
    /// Bytes already owed to the peer (the hello ack, when the router
    /// could not flush all of it before handing off). The shard writes
    /// these before any reply.
    wbuf: Vec<u8>,
    /// Peer already half-closed: serve what is buffered, flush, close.
    read_closed: bool,
}

/// A request one shard forwards to the shard owning its tenant.
struct Forward {
    origin: u32,
    conn_slot: usize,
    conn_gen: u64,
    seq: u64,
    codec: Codec,
    envelope: RequestEnvelope,
}

/// The encoded reply coming back to the origin shard.
struct Completion {
    conn_slot: usize,
    conn_gen: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// Cross-shard traffic into one shard.
enum Inbound {
    Forward(Forward),
    Completion(Completion),
}

/// One shard's addresses, shared by the router and every peer shard.
#[derive(Clone)]
struct ShardLink {
    adopt: SyncSender<Handoff>,
    inbox: Arc<Mutex<VecDeque<Inbound>>>,
    poller: Arc<Poller>,
}

impl ShardLink {
    fn push(&self, msg: Inbound) {
        // Poison means a peer panicked mid-push; the deque itself is
        // still structurally sound, so keep delivering.
        self.inbox
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(msg);
        let _ = self.poller.notify();
    }
}

/// Factory for sharded protocol servers; see the [module docs](self).
pub struct ShardedServer;

impl ShardedServer {
    /// Binds `addr` and serves `template` split into
    /// [`ShardConfig::shards`] shard services (see
    /// [`SpeQuloS::into_shards`]): shard `i` owns BoT ids `≡ i (mod N)`
    /// and, when the template has a pool, a [`PoolLease`] on the shared
    /// capacity.
    pub fn spawn_sharded(
        template: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        shard_cfg: ShardConfig,
    ) -> io::Result<ShardedHandle> {
        let (services, ledger) = template.into_shards(shard_cfg.shards, shard_cfg.quota_floor);
        let durables = services.iter().map(|_| None).collect();
        Self::spawn_parts(services, ledger, durables, addr, config, shard_cfg)
    }

    /// [`ShardedServer::spawn_sharded`] with per-shard durability:
    /// shard `i` owns the write-ahead log in `durability.dir/shard-<i>`
    /// and appends each request it executes *before* dispatching it —
    /// PR 7's append→fsync→dispatch, shard-locally. Existing state is
    /// recovered first, all shards in parallel; the reports come back
    /// in shard order.
    pub fn spawn_durable_sharded(
        template: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        shard_cfg: ShardConfig,
        durability: DurabilityConfig,
    ) -> Result<(ShardedHandle, Vec<RecoveryReport>), DurableError> {
        let (services, ledger) = template.into_shards(shard_cfg.shards, shard_cfg.quota_floor);
        // Parallel per-shard recovery: each shard's log replays into its
        // own template concurrently, so restart cost is the *slowest*
        // shard, not the sum.
        let recovered = thread::scope(|scope| {
            let handles: Vec<_> = services
                .into_iter()
                .enumerate()
                .map(|(i, svc)| {
                    let dir = durability.dir.join(format!("shard-{i}"));
                    let fsync = durability.fsync;
                    scope.spawn(move || -> Result<_, DurableError> {
                        let (wal, recovery) = WalStore::open(&dir, fsync)?;
                        let (svc, report) = recovery.recover(svc)?;
                        Ok((svc, wal, report))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect::<Result<Vec<_>, _>>()
        })?;
        let mut services = Vec::with_capacity(recovered.len());
        let mut durables = Vec::with_capacity(recovered.len());
        let mut reports = Vec::with_capacity(recovered.len());
        for (svc, wal, report) in recovered {
            services.push(svc);
            durables.push(Some(DurableState {
                wal,
                snapshot_every: durability.snapshot_every,
                since_snapshot: 0,
            }));
            reports.push(report);
        }
        // Publish recovered loads before any traffic so the first
        // rebalance pass pins quotas at what the shards actually lease.
        if let Some((_, leases)) = ledger.as_ref() {
            for (svc, lease) in services.iter().zip(leases) {
                let in_use = svc.pool().map_or(0, |p| p.in_use());
                lease.publish(in_use, svc.credits.total_outstanding());
            }
        }
        let handle = Self::spawn_parts(services, ledger, durables, addr, config, shard_cfg)?;
        Ok((handle, reports))
    }

    /// [`ShardedServer::spawn_sharded`] on `127.0.0.1:0` with default
    /// server tuning — the loopback deployment tests use.
    pub fn spawn_loopback(template: SpeQuloS, shard_cfg: ShardConfig) -> io::Result<ShardedHandle> {
        Self::spawn_sharded(template, "127.0.0.1:0", ServerConfig::default(), shard_cfg)
    }

    fn spawn_parts(
        services: Vec<SpeQuloS>,
        ledger: Option<(PoolLedger, Vec<PoolLease>)>,
        durables: Vec<Option<DurableState>>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        shard_cfg: ShardConfig,
    ) -> io::Result<ShardedHandle> {
        let n = services.len() as u32;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handled = Arc::new(AtomicU64::new(0));
        let (ledger, mut leases) = match ledger {
            Some((ledger, leases)) => (Some(ledger), leases.into_iter().map(Some).collect()),
            None => (None, services.iter().map(|_| None).collect::<Vec<_>>()),
        };

        let mut links = Vec::with_capacity(services.len());
        let mut adopt_rxs = Vec::with_capacity(services.len());
        for _ in 0..services.len() {
            let (tx, rx) = mpsc::sync_channel::<Handoff>(shard_cfg.mailbox_depth.max(1));
            links.push(ShardLink {
                adopt: tx,
                inbox: Arc::new(Mutex::new(VecDeque::new())),
                poller: Arc::new(Poller::new()?),
            });
            adopt_rxs.push(rx);
        }
        let links = Arc::new(links);

        let mut shard_threads = Vec::with_capacity(services.len());
        let mut shard_pollers = Vec::with_capacity(services.len());
        for (i, (service, (adopt_rx, durable))) in services
            .into_iter()
            .zip(adopt_rxs.into_iter().zip(durables))
            .enumerate()
        {
            let poller = Arc::clone(&links[i].poller);
            shard_pollers.push(Arc::clone(&poller));
            let shard = Shard {
                id: i as u32,
                shards: n,
                poller,
                conns: Vec::new(),
                free: Vec::new(),
                service,
                lease: leases[i].take(),
                ledger: ledger.clone(),
                durable,
                adopt: adopt_rx,
                inbox: Arc::clone(&links[i].inbox),
                links: Arc::clone(&links),
                handled: Arc::clone(&handled),
                rebalance_every: shard_cfg.rebalance_every,
                max_frame: config.max_frame_bytes,
                highwater: config.write_highwater.max(1),
            };
            let flag = Arc::clone(&shutdown);
            shard_threads.push(thread::spawn(move || shard.run(&flag)));
        }

        let router_poller = Arc::new(Poller::new()?);
        router_poller.add(&listener, Event::readable(0))?;
        let router = {
            let poller = Arc::clone(&router_poller);
            let links = Arc::clone(&links);
            let flag = Arc::clone(&shutdown);
            let max_frame = config.max_frame_bytes;
            thread::spawn(move || {
                Router {
                    poller,
                    listener,
                    links,
                    shards: n,
                    pending: Vec::new(),
                    free: Vec::new(),
                    max_frame,
                }
                .run(&flag)
            })
        };

        let rebalancer = match (ledger, shard_cfg.rebalance_interval) {
            (Some(ledger), Some(interval)) if n > 1 => {
                let flag = Arc::clone(&shutdown);
                Some(thread::spawn(move || {
                    let step = interval
                        .min(Duration::from_millis(50))
                        .max(Duration::from_millis(1));
                    let mut last = Instant::now();
                    while !flag.load(Ordering::Acquire) {
                        thread::sleep(step);
                        if last.elapsed() >= interval {
                            ledger.rebalance();
                            last = Instant::now();
                        }
                    }
                }))
            }
            _ => None,
        };

        Ok(ShardedHandle {
            addr,
            inner: Some(HandleInner {
                shutdown,
                router_poller,
                router,
                shard_pollers,
                shard_threads,
                rebalancer,
            }),
        })
    }
}

struct HandleInner {
    shutdown: Arc<AtomicBool>,
    router_poller: Arc<Poller>,
    router: JoinHandle<()>,
    shard_pollers: Vec<Arc<Poller>>,
    shard_threads: Vec<JoinHandle<SpeQuloS>>,
    rebalancer: Option<JoinHandle<()>>,
}

/// A running sharded server. Dropping the handle shuts everything down
/// (discarding the shard services); [`ShardedHandle::into_services`]
/// shuts down *and* recovers every shard's service state.
pub struct ShardedHandle {
    addr: SocketAddr,
    inner: Option<HandleInner>,
}

impl ShardedHandle {
    /// The bound address — with `"127.0.0.1:0"` this carries the actual
    /// port clients must connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shards serving behind the listener.
    pub fn shards(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.shard_threads.len())
    }

    /// Stops the server and returns every shard's service, in shard
    /// order — the sharded counterpart of `ServerHandle::into_service`.
    /// Replied requests are applied (a reply cannot exist before its
    /// request executed, even across a forward); connections still open
    /// are dropped.
    pub fn into_services(mut self) -> Vec<SpeQuloS> {
        // spq-lint: allow(panic-unwrap) — `self` is consumed whole, so this is provably the first stop
        self.stop().expect("first stop returns the services")
    }

    /// Idempotent teardown; returns the services on the first call.
    fn stop(&mut self) -> Option<Vec<SpeQuloS>> {
        let inner = self.inner.take()?;
        inner.shutdown.store(true, Ordering::Release);
        let _ = inner.router_poller.notify();
        for poller in &inner.shard_pollers {
            let _ = poller.notify();
        }
        let _ = inner.router.join();
        if let Some(rebalancer) = inner.rebalancer {
            let _ = rebalancer.join();
        }
        Some(
            inner
                .shard_threads
                .into_iter()
                .map(|t| t.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect(),
        )
    }
}

impl Drop for ShardedHandle {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

// ---------------------------------------------------------------------------
// The accept-and-route thread
// ---------------------------------------------------------------------------

/// A connection still being classified: hello, then the first complete
/// request frame decides the owning shard.
struct PendingConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rpos: usize,
    /// The hello ack (written by the *router*, so negotiation completes
    /// even though the shard only sees the connection at its first
    /// request — clients block on the ack before sending one).
    wbuf: Vec<u8>,
    wpos: usize,
    hello: Option<Codec>,
    read_closed: bool,
}

impl PendingConn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// What classification decided about a pending connection.
enum Classified {
    /// Not enough bytes yet; keep polling.
    Wait,
    /// Hand the connection to this shard.
    Route(u32),
    /// Protocol violation or dead peer; drop it (after best-effort
    /// writing `refusal` when present).
    Drop(Option<String>),
}

struct Router {
    poller: Arc<Poller>,
    listener: TcpListener,
    links: Arc<Vec<ShardLink>>,
    shards: u32,
    pending: Vec<Option<PendingConn>>,
    free: Vec<usize>,
    max_frame: usize,
}

impl Router {
    fn run(mut self, shutdown: &AtomicBool) {
        let mut events: Vec<Event> = Vec::new();
        while !shutdown.load(Ordering::Acquire) {
            events.clear();
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(500)))
                .is_err()
            {
                break;
            }
            for event in events.drain(..) {
                if event.key == 0 {
                    self.accept_burst();
                } else {
                    self.drive(event.key - 1);
                }
            }
        }
    }

    fn accept_burst(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.pending.push(None);
                    self.pending.len() - 1
                }
            };
            if self.poller.add(&stream, Event::readable(slot + 1)).is_err() {
                self.free.push(slot);
                continue;
            }
            self.pending[slot] = Some(PendingConn {
                stream,
                rbuf: Vec::new(),
                rpos: 0,
                wbuf: Vec::new(),
                wpos: 0,
                hello: None,
                read_closed: false,
            });
        }
        let _ = self.poller.modify(&self.listener, Event::readable(0));
    }

    fn drive(&mut self, slot: usize) {
        let Some(mut conn) = self.pending.get_mut(slot).and_then(Option::take) else {
            return;
        };
        if self.fill(&mut conn).is_err() {
            let _ = self.poller.delete(&conn.stream);
            self.free.push(slot);
            return;
        }
        let classified = self.classify(&mut conn);
        if flush(&mut conn.stream, &mut conn.wbuf, &mut conn.wpos).is_err() {
            let _ = self.poller.delete(&conn.stream);
            self.free.push(slot);
            return;
        }
        match classified {
            Classified::Wait => {
                if conn.read_closed {
                    // EOF before the first frame: nothing owed.
                    let _ = self.poller.delete(&conn.stream);
                    self.free.push(slot);
                    return;
                }
                let interest = Event {
                    key: slot + 1,
                    readable: true,
                    writable: conn.pending_write() > 0,
                };
                if self.poller.modify(&conn.stream, interest).is_err() {
                    self.free.push(slot);
                    return;
                }
                self.pending[slot] = Some(conn);
            }
            Classified::Route(target) => {
                let _ = self.poller.delete(&conn.stream);
                self.free.push(slot);
                let codec = conn.hello.unwrap_or(Codec::Json);
                let handoff = Handoff {
                    stream: conn.stream,
                    rbuf: conn.rbuf.split_off(conn.rpos),
                    codec,
                    wbuf: conn.wbuf.split_off(conn.wpos),
                    read_closed: conn.read_closed,
                };
                let link = &self.links[target as usize];
                // Blocking send: accept backpressure when a shard's
                // mailbox is full. Only the router ever blocks here, so
                // no deadlock cycle is possible. A disconnected shard
                // (shutdown) just drops the connection.
                if link.adopt.send(handoff).is_ok() {
                    let _ = link.poller.notify();
                }
            }
            Classified::Drop(refusal) => {
                if let Some(line) = refusal {
                    // Best-effort: one nonblocking write of the refusal.
                    let _ = conn.stream.write(line.as_bytes());
                }
                let _ = self.poller.delete(&conn.stream);
                self.free.push(slot);
            }
        }
    }

    fn fill(&self, conn: &mut PendingConn) -> Result<(), ()> {
        let mut chunk = [0u8; 4096];
        loop {
            if conn.rbuf.len() - conn.rpos > self.max_frame + 64 {
                return Ok(());
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    return Ok(());
                }
                Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
    }

    /// Hello exchange, then peek (without consuming) at the first
    /// complete request frame and route by its tenant key. The frame
    /// stays in the buffer: the shard decodes and serves it after
    /// adoption, so classification is read-only.
    fn classify(&self, conn: &mut PendingConn) -> Classified {
        if conn.hello.is_none() {
            let buf = &conn.rbuf[conn.rpos..];
            match frame::decode_hello(buf) {
                Ok(None) => return Classified::Wait,
                Ok(Some((HelloOutcome::Legacy, consumed))) => {
                    // Legacy JSON: no ack owed.
                    conn.rpos += consumed;
                    conn.hello = Some(Codec::Json);
                }
                Ok(Some((HelloOutcome::Hello(codec), consumed))) => {
                    conn.rpos += consumed;
                    // Ack now: the client blocks on this line before it
                    // sends the first request we classify by.
                    conn.wbuf
                        .extend_from_slice(frame::hello_ack_line(codec).as_bytes());
                    conn.hello = Some(codec);
                }
                Err(FrameError::BadHello(reason)) => {
                    let refusal = (buf.first() == Some(&b'S'))
                        .then(|| frame::hello_err_line(&reason).to_string());
                    return Classified::Drop(refusal);
                }
                Err(_) => return Classified::Drop(None),
            }
        }
        let Some(codec) = conn.hello else {
            // Classified above; an impossible `None` drops the
            // connection rather than panicking the router.
            return Classified::Drop(None);
        };
        let buf = &conn.rbuf[conn.rpos..];
        let payload = match codec {
            Codec::Json => match frame::decode_json_frame(buf, self.max_frame) {
                Ok(None) => return Classified::Wait,
                Ok(Some((payload, _))) => {
                    RequestEnvelope::from_json(&payload).ok().map(|e| e.request)
                }
                Err(_) => return Classified::Drop(None),
            },
            Codec::Binary => match frame::decode_binary_frame(buf, self.max_frame) {
                Ok(None) => return Classified::Wait,
                Ok(Some((payload, _))) => binary::decode_request(&payload).ok().map(|e| e.request),
                Err(_) => return Classified::Drop(None),
            },
        };
        // An undecodable or keyless first envelope still gets a shard
        // (which will answer with the typed error): spread by residue.
        let target = payload
            .as_ref()
            .and_then(|r| route_request(r, self.shards))
            .unwrap_or(0);
        Classified::Route(target)
    }
}

// ---------------------------------------------------------------------------
// One shard: a full reactor plus cross-shard forwarding
// ---------------------------------------------------------------------------

/// A reply slot in a connection's in-order ledger: `None` while the
/// forwarded request is in flight, the encoded frame once ready.
type ReplySlot = (u64, Option<Vec<u8>>);

struct ShardConn {
    stream: TcpStream,
    codec: Codec,
    gen: u64,
    /// The `conns` slot this connection lives in — recorded at adoption
    /// so forwards enqueued while the connection is taken out of its
    /// slot still know where the completion must land.
    slot_hint: usize,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    read_closed: bool,
    next_seq: u64,
    /// Replies not yet released to `wbuf`, in request order. Empty in
    /// the single-shard fast path: a local reply with nothing queued
    /// ahead of it is encoded straight into `wbuf`.
    ledger: VecDeque<ReplySlot>,
}

impl ShardConn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Releases the longest ready prefix of the reply ledger into the
    /// write buffer — FIFO per connection, across local and forwarded
    /// replies alike.
    fn release_ready(&mut self) {
        while let Some((_, slot)) = self.ledger.front_mut() {
            let Some(bytes) = slot.take() else { break };
            self.wbuf.extend_from_slice(&bytes);
            self.ledger.pop_front();
        }
    }

    fn forwards_in_flight(&self) -> bool {
        self.ledger.iter().any(|(_, b)| b.is_none())
    }
}

enum Verdict {
    Keep,
    Close,
}

struct Shard {
    id: u32,
    shards: u32,
    poller: Arc<Poller>,
    conns: Vec<Option<ShardConn>>,
    free: Vec<usize>,
    service: SpeQuloS,
    lease: Option<PoolLease>,
    ledger: Option<PoolLedger>,
    durable: Option<DurableState>,
    adopt: Receiver<Handoff>,
    inbox: Arc<Mutex<VecDeque<Inbound>>>,
    links: Arc<Vec<ShardLink>>,
    handled: Arc<AtomicU64>,
    rebalance_every: Option<u64>,
    max_frame: usize,
    highwater: usize,
}

impl Shard {
    fn run(mut self, shutdown: &AtomicBool) -> SpeQuloS {
        let mut events: Vec<Event> = Vec::new();
        let mut next_gen: u64 = 1;
        while !shutdown.load(Ordering::Acquire) {
            events.clear();
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(500)))
                .is_err()
            {
                break;
            }
            while let Ok(handoff) = self.adopt.try_recv() {
                self.adopt_conn(handoff, next_gen);
                next_gen += 1;
            }
            let inbound: Vec<Inbound> = {
                let mut q = self
                    .inbox
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q.drain(..).collect()
            };
            for msg in inbound {
                match msg {
                    Inbound::Forward(fwd) => self.execute_forward(fwd),
                    Inbound::Completion(done) => self.apply_completion(done),
                }
            }
            for event in events.drain(..) {
                if event.key == 0 {
                    continue; // shards own no listener
                }
                self.drive(event.key - 1, event.readable, event.writable);
            }
        }
        self.service
    }

    fn adopt_conn(&mut self, handoff: Handoff, gen: u64) {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if self
            .poller
            .add(&handoff.stream, Event::readable(slot + 1))
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        let conn = ShardConn {
            stream: handoff.stream,
            codec: handoff.codec,
            gen,
            slot_hint: slot,
            rbuf: handoff.rbuf,
            rpos: 0,
            wbuf: handoff.wbuf,
            wpos: 0,
            read_closed: handoff.read_closed,
            next_seq: 0,
            ledger: VecDeque::new(),
        };
        // The handed-off buffer already holds at least one frame: serve
        // it (and anything pipelined behind it) right now.
        self.settle(slot, conn, false, true);
    }

    /// One connection's turn, mirroring the single reactor's `drive`.
    fn drive(&mut self, slot: usize, readable: bool, writable: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        self.settle(slot, conn, readable, writable);
    }

    /// Steps the connection and either re-arms it into its slot or
    /// closes it. `settle` is shared by socket events, adoption and
    /// completion arrivals.
    fn settle(&mut self, slot: usize, mut conn: ShardConn, readable: bool, writable: bool) {
        let verdict = self.step(&mut conn, readable, writable);
        match verdict {
            Verdict::Close => {
                let _ = self.poller.delete(&conn.stream);
                self.free.push(slot);
                if slot >= self.conns.len() {
                    self.conns.resize_with(slot + 1, || None);
                }
                self.conns[slot] = None;
            }
            Verdict::Keep => {
                let interest = Event {
                    key: slot + 1,
                    readable: !conn.read_closed && conn.pending_write() < self.highwater,
                    writable: conn.pending_write() > 0,
                };
                if self.poller.modify(&conn.stream, interest).is_err() {
                    self.free.push(slot);
                    return;
                }
                if slot >= self.conns.len() {
                    self.conns.resize_with(slot + 1, || None);
                }
                self.conns[slot] = Some(conn);
            }
        }
    }

    fn step(&mut self, conn: &mut ShardConn, readable: bool, writable: bool) -> Verdict {
        if readable && !conn.read_closed && self.fill(conn).is_err() {
            return Verdict::Close;
        }
        if self.serve_buffered(conn).is_err() {
            return Verdict::Close;
        }
        if (writable || conn.pending_write() > 0) && self.flush(conn).is_err() {
            return Verdict::Close;
        }
        if self.serve_buffered(conn).is_err() {
            return Verdict::Close;
        }
        // Half-close drain: close only once every buffered request is
        // served, every forwarded reply returned, and every byte
        // flushed.
        if conn.read_closed && conn.pending_write() == 0 && !conn.forwards_in_flight() {
            return Verdict::Close;
        }
        Verdict::Keep
    }

    fn fill(&mut self, conn: &mut ShardConn) -> Result<(), ()> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if conn.rbuf.len() - conn.rpos > self.max_frame + 64 {
                return Ok(());
            }
            if conn.pending_write() >= self.highwater {
                return Ok(());
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    return Ok(());
                }
                Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
    }

    fn serve_buffered(&mut self, conn: &mut ShardConn) -> Result<(), ()> {
        loop {
            if conn.pending_write() >= self.highwater {
                break;
            }
            let buf = &conn.rbuf[conn.rpos..];
            let envelope = match conn.codec {
                Codec::Json => match frame::decode_json_frame(buf, self.max_frame) {
                    Ok(None) => break,
                    Ok(Some((payload, consumed))) => {
                        conn.rpos += consumed;
                        match RequestEnvelope::from_json(&payload) {
                            Ok(envelope) => Ok(envelope),
                            Err(e) => Err(ResponseEnvelope {
                                id: peek_id(&payload).unwrap_or(0),
                                response: Response::Error(RequestError::Invalid(format!(
                                    "bad envelope: {e}"
                                ))),
                            }),
                        }
                    }
                    Err(_) => {
                        self.compact(conn);
                        return Err(());
                    }
                },
                Codec::Binary => match frame::decode_binary_frame(buf, self.max_frame) {
                    Ok(None) => break,
                    Ok(Some((payload, consumed))) => {
                        conn.rpos += consumed;
                        match binary::decode_request(&payload) {
                            Ok(envelope) => Ok(envelope),
                            Err(e) => Err(ResponseEnvelope {
                                id: binary::peek_id(&payload).unwrap_or(0),
                                response: Response::Error(RequestError::Invalid(format!(
                                    "bad envelope: {e}"
                                ))),
                            }),
                        }
                    }
                    Err(_) => {
                        self.compact(conn);
                        return Err(());
                    }
                },
            };
            let seq = conn.next_seq;
            conn.next_seq += 1;
            match envelope {
                Err(error_reply) => {
                    self.queue_reply(conn, seq, encode_reply(conn.codec, &error_reply))
                }
                Ok(envelope) => self.route_and_serve(conn, seq, envelope),
            }
            conn.release_ready();
        }
        self.compact(conn);
        Ok(())
    }

    /// Serves one decoded envelope: inline when this shard owns its
    /// tenant (the fast path — every single-shard request takes it),
    /// forwarded to the owning shard otherwise.
    fn route_and_serve(&mut self, conn: &mut ShardConn, seq: u64, envelope: RequestEnvelope) {
        if let Request::Batch(items) = &envelope.request {
            // A batch is atomic on one service; one spanning shards
            // cannot be — refuse it with a typed error rather than
            // half-apply it.
            let mut targets = items.iter().filter_map(|r| route_request(r, self.shards));
            if let Some(first) = targets.next() {
                if targets.any(|t| t != first) {
                    let reply = ResponseEnvelope {
                        id: envelope.id,
                        response: Response::Error(RequestError::Invalid(
                            "batch spans shards: split it per tenant".into(),
                        )),
                    };
                    self.queue_reply(conn, seq, encode_reply(conn.codec, &reply));
                    return;
                }
            }
        }
        let target = route_request(&envelope.request, self.shards).unwrap_or(self.id);
        if target == self.id {
            let reply = self.execute(envelope);
            if conn.ledger.is_empty() {
                // Fast path: nothing queued ahead, encode straight into
                // the write buffer.
                write_reply(conn.codec, &mut conn.wbuf, &reply);
            } else {
                self.queue_reply(conn, seq, encode_reply(conn.codec, &reply));
            }
        } else {
            conn.ledger.push_back((seq, None));
            self.links[target as usize].push(Inbound::Forward(Forward {
                origin: self.id,
                conn_slot: self.slot_of(conn),
                conn_gen: conn.gen,
                seq,
                codec: conn.codec,
                envelope,
            }));
        }
    }

    fn slot_of(&self, conn: &ShardConn) -> usize {
        conn.slot_hint
    }

    fn queue_reply(&mut self, conn: &mut ShardConn, seq: u64, bytes: Vec<u8>) {
        conn.ledger.push_back((seq, Some(bytes)));
    }

    /// Executes a request this shard owns: lease sync → write-ahead →
    /// dispatch → publish load → deterministic rebalance trigger →
    /// snapshot bookkeeping.
    fn execute(&mut self, envelope: RequestEnvelope) -> ResponseEnvelope {
        let RequestEnvelope { id, at, request } = envelope;
        if let Some(lease) = self.lease.as_ref() {
            self.service.set_pool_capacity(lease.quota());
        }
        if let Some(d) = self.durable.as_mut() {
            if let Err(e) = d.wal.append(at, &request) {
                let response = Response::Error(RequestError::Transport(format!(
                    "write-ahead log append failed: {e}"
                )));
                return ResponseEnvelope { id, response };
            }
        }
        let response = self.service.handle(request, at);
        if let Some(lease) = self.lease.as_ref() {
            let in_use = self.service.pool().map_or(0, |p| p.in_use());
            lease.publish(in_use, self.service.credits.total_outstanding());
        }
        if let (Some(every), Some(ledger)) = (self.rebalance_every, self.ledger.as_ref()) {
            let n = self.handled.fetch_add(1, Ordering::AcqRel) + 1;
            if n % every == 0 {
                ledger.rebalance();
            }
        }
        if let Some(d) = self.durable.as_mut() {
            d.since_snapshot += 1;
            if d.snapshot_every > 0 && d.since_snapshot >= d.snapshot_every {
                let _ = d.wal.snapshot(&self.service);
                d.since_snapshot = 0;
            }
        }
        ResponseEnvelope { id, response }
    }

    /// A request another shard forwarded here: execute it (this shard
    /// owns the tenant — the append goes to *this* shard's WAL) and
    /// send the encoded reply back to the origin.
    fn execute_forward(&mut self, fwd: Forward) {
        let reply = self.execute(fwd.envelope);
        let bytes = encode_reply(fwd.codec, &reply);
        self.links[fwd.origin as usize].push(Inbound::Completion(Completion {
            conn_slot: fwd.conn_slot,
            conn_gen: fwd.conn_gen,
            seq: fwd.seq,
            bytes,
        }));
    }

    /// A forwarded request's reply came back: fill its ledger slot,
    /// release the ready prefix, flush, and re-arm the connection (its
    /// readiness interest may have changed now that bytes are queued).
    fn apply_completion(&mut self, done: Completion) {
        let Some(mut conn) = self.conns.get_mut(done.conn_slot).and_then(Option::take) else {
            return; // connection closed while the forward was in flight
        };
        if conn.gen != done.conn_gen {
            // The slot was reused; this reply belongs to a dead
            // connection.
            self.conns[done.conn_slot] = Some(conn);
            return;
        }
        if let Some(slot) = conn.ledger.iter_mut().find(|(seq, _)| *seq == done.seq) {
            slot.1 = Some(done.bytes);
        }
        conn.release_ready();
        self.settle(done.conn_slot, conn, false, true);
    }

    fn compact(&self, conn: &mut ShardConn) {
        if conn.rpos > 0 {
            conn.rbuf.drain(..conn.rpos);
            conn.rpos = 0;
        }
    }

    fn flush(&self, conn: &mut ShardConn) -> Result<(), ()> {
        flush(&mut conn.stream, &mut conn.wbuf, &mut conn.wpos)
    }
}

/// Writes `wbuf[wpos..]` until drained or the kernel stops accepting;
/// `Err(())` = dead peer.
fn flush(stream: &mut TcpStream, wbuf: &mut Vec<u8>, wpos: &mut usize) -> Result<(), ()> {
    while *wpos < wbuf.len() {
        match stream.write(&wbuf[*wpos..]) {
            Ok(0) => return Err(()),
            Ok(n) => *wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    wbuf.clear();
    *wpos = 0;
    Ok(())
}

/// Encodes a reply as one complete frame in `codec`.
fn encode_reply(codec: Codec, reply: &ResponseEnvelope) -> Vec<u8> {
    let mut buf = Vec::new();
    write_reply(codec, &mut buf, reply);
    buf
}

fn write_reply(codec: Codec, buf: &mut Vec<u8>, reply: &ResponseEnvelope) {
    match codec {
        Codec::Json => frame::write_frame_vec(buf, &reply.to_json()),
        Codec::Binary => frame::write_binary_frame_vec(buf, &binary::encode_response(reply)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteService;
    use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
    use simcore::SimTime;
    use spequlos::tenancy::shard_of_user;
    use spequlos::{Request, Response, SpqService, UserId};
    use std::io::BufReader;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spq-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Two user ids guaranteed to live on different shards of `n`.
    fn split_pair(n: u32) -> (UserId, UserId) {
        let a = UserId(1);
        let b = (2..999)
            .map(UserId)
            .find(|u| shard_of_user(*u, n) != shard_of_user(a, n))
            .expect("some user hashes elsewhere");
        (a, b)
    }

    #[test]
    fn single_shard_round_trip_and_into_services() {
        let handle =
            ShardedServer::spawn_loopback(SpeQuloS::new(), ShardConfig::deterministic(1, 1_000))
                .expect("spawn");
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        let r = remote.handle(
            Request::Deposit {
                user: UserId(9),
                credits: 250.0,
            },
            SimTime::ZERO,
        );
        assert!(matches!(r, Response::Deposited { .. }), "got {r:?}");
        drop(remote);
        let services = handle.into_services();
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].credits.balance(UserId(9)), 250.0);
    }

    #[test]
    fn sessions_land_on_the_owning_shard() {
        const SHARDS: u32 = 4;
        let handle = ShardedServer::spawn_loopback(
            SpeQuloS::new(),
            ShardConfig::deterministic(SHARDS, 1_000),
        )
        .expect("spawn");
        let mut bots = Vec::new();
        for u in 0..16u64 {
            let user = UserId(100 + u);
            let mut remote = RemoteService::connect(handle.addr()).expect("connect");
            let r = remote.handle(
                Request::Deposit {
                    user,
                    credits: 100.0,
                },
                SimTime::ZERO,
            );
            assert!(matches!(r, Response::Deposited { .. }), "got {r:?}");
            let r = remote.handle(
                Request::RegisterQos {
                    user,
                    env: "t/XWHEP/SHARD".into(),
                    size: 10,
                },
                SimTime::ZERO,
            );
            let Response::Registered { bot } = r else {
                panic!("expected Registered, got {r:?}");
            };
            // Bot ids are congruent with the owning shard: the shard
            // that owns hash(user) allocated the id on its stride.
            assert_eq!(bot.0 % SHARDS as u64, shard_of_user(user, SHARDS) as u64);
            bots.push((user, bot));
        }
        let services = handle.into_services();
        assert_eq!(services.len(), SHARDS as usize);
        for (user, bot) in bots {
            let shard = shard_of_user(user, SHARDS) as usize;
            assert_eq!(services[shard].credits.balance(user), 100.0);
            assert_eq!(services[shard].user_of(bot), Some(user));
            for (i, svc) in services.iter().enumerate() {
                if i != shard {
                    assert_eq!(svc.user_of(bot), None, "bot leaked to shard {i}");
                }
            }
        }
    }

    #[test]
    fn mixed_tenant_connection_keeps_fifo_across_forwards() {
        const SHARDS: u32 = 4;
        let handle = ShardedServer::spawn_loopback(
            SpeQuloS::new(),
            ShardConfig::deterministic(SHARDS, 1_000),
        )
        .expect("spawn");
        // Legacy JSON connection, fully pipelined: 40 deposits for
        // users spread across every shard, written before any reply is
        // read. Interleaves local serves with forwards on every shard.
        let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
        for id in 1..=40u64 {
            let env = RequestEnvelope {
                id,
                at: SimTime::ZERO,
                request: Request::Deposit {
                    user: UserId(id % 11),
                    credits: 1.0,
                },
            };
            write_frame(&mut stream, &env.to_json()).expect("write");
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for id in 1..=40u64 {
            let payload = read_frame(&mut reader, MAX_FRAME_BYTES)
                .expect("read")
                .expect("reply before EOF");
            let reply = ResponseEnvelope::from_json(&payload).expect("decode");
            assert_eq!(reply.id, id, "replies must come back in request order");
            assert!(matches!(reply.response, Response::Deposited { .. }));
        }
        drop(reader);
        drop(stream);
        let services = handle.into_services();
        let total: f64 = (0..11u64)
            .map(|u| {
                services[shard_of_user(UserId(u), SHARDS) as usize]
                    .credits
                    .balance(UserId(u))
            })
            .sum();
        assert_eq!(total, 40.0, "every deposit applied exactly once");
    }

    #[test]
    fn cross_shard_batch_is_refused_atomically() {
        const SHARDS: u32 = 4;
        let handle = ShardedServer::spawn_loopback(
            SpeQuloS::new(),
            ShardConfig::deterministic(SHARDS, 1_000),
        )
        .expect("spawn");
        let (a, b) = split_pair(SHARDS);
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        let r = remote.handle(
            Request::Batch(vec![
                Request::Deposit {
                    user: a,
                    credits: 5.0,
                },
                Request::Deposit {
                    user: b,
                    credits: 5.0,
                },
            ]),
            SimTime::ZERO,
        );
        assert!(
            matches!(&r, Response::Error(RequestError::Invalid(msg)) if msg.contains("spans shards")),
            "got {r:?}"
        );
        // A single-shard batch still works.
        let r = remote.handle(
            Request::Batch(vec![
                Request::Deposit {
                    user: a,
                    credits: 5.0,
                },
                Request::Deposit {
                    user: a,
                    credits: 5.0,
                },
            ]),
            SimTime::ZERO,
        );
        assert!(matches!(r, Response::Batch(_)), "got {r:?}");
        drop(remote);
        let services = handle.into_services();
        assert_eq!(
            services[shard_of_user(a, SHARDS) as usize]
                .credits
                .balance(a),
            10.0,
            "refused batch applied nothing"
        );
        assert_eq!(
            services[shard_of_user(b, SHARDS) as usize]
                .credits
                .balance(b),
            0.0
        );
    }

    #[test]
    fn durable_sharded_recovers_every_shard() {
        const SHARDS: u32 = 3;
        let dir = temp_dir("recover");
        let durability = DurabilityConfig::new(&dir);
        let (handle, reports) = ShardedServer::spawn_durable_sharded(
            SpeQuloS::new(),
            "127.0.0.1:0",
            ServerConfig::default(),
            ShardConfig::deterministic(SHARDS, 1_000),
            durability.clone(),
        )
        .expect("first spawn");
        assert_eq!(reports.len(), SHARDS as usize);
        assert!(reports
            .iter()
            .all(|r| r.snapshot_applied == 0 && r.replayed == 0));
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        for u in 0..9u64 {
            let r = remote.handle(
                Request::Deposit {
                    user: UserId(u),
                    credits: 10.0,
                },
                SimTime::ZERO,
            );
            assert!(matches!(r, Response::Deposited { .. }), "got {r:?}");
        }
        drop(remote);
        drop(handle);

        let (handle, reports) = ShardedServer::spawn_durable_sharded(
            SpeQuloS::new(),
            "127.0.0.1:0",
            ServerConfig::default(),
            ShardConfig::deterministic(SHARDS, 1_000),
            durability,
        )
        .expect("respawn");
        let applied: u64 = reports
            .iter()
            .map(|r| r.snapshot_applied + r.replayed)
            .sum();
        assert_eq!(applied, 9, "all acknowledged deposits recovered");
        let services = handle.into_services();
        for u in 0..9u64 {
            let user = UserId(u);
            let shard = shard_of_user(user, SHARDS) as usize;
            assert_eq!(services[shard].credits.balance(user), 10.0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_is_idempotent_via_drop_after_into_services() {
        let handle =
            ShardedServer::spawn_loopback(SpeQuloS::new(), ShardConfig::new(2)).expect("spawn");
        let addr = handle.addr();
        let services = handle.into_services();
        assert_eq!(services.len(), 2);
        // The listener is gone: a fresh connect must fail (possibly
        // after the kernel backlog drains, so allow one ECONNREFUSED or
        // a read of zero bytes).
        match std::net::TcpStream::connect(addr) {
            Err(_) => {}
            Ok(stream) => {
                let mut reader = BufReader::new(stream);
                let frame = read_frame(&mut reader, MAX_FRAME_BYTES);
                assert!(
                    matches!(frame, Ok(None) | Err(_)),
                    "server must not answer after shutdown"
                );
            }
        }
    }
}
