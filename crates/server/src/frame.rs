//! Framing and codec negotiation (PROTOCOL.md §§2–4).
//!
//! A connection speaks one of two frame formats, chosen by a first-line
//! hello (§2). The **JSON** frame (§3) is
//!
//! ```text
//! <decimal payload length>\n
//! <payload: exactly that many bytes of UTF-8 JSON>\n
//! ```
//!
//! The length prefix lets the reader allocate once and pull the payload
//! with `read_exact` — no scanning for delimiters inside the JSON — while
//! the newline after the header and after the payload keep a captured
//! stream line-readable (`nc`-friendly, diffable, greppable). The
//! trailing newline doubles as a cheap integrity check: if it is missing
//! the peer and we disagree about the length, and the connection must be
//! dropped rather than resynchronized.
//!
//! The **binary** frame (§4) is a 4-byte little-endian payload length
//! followed by exactly that many payload bytes (a binary envelope,
//! [`crate::binary`]) — no terminator, no text anywhere.
//!
//! Two reader families serve the two halves of the transport: blocking
//! `read_*` functions for the client ([`crate::RemoteService`] owns its
//! socket and can wait), and non-consuming `decode_*` functions for the
//! server's reactor, which accumulates bytes from non-blocking sockets
//! and asks "is a complete frame buffered yet?" (`Ok(None)` = not yet;
//! `Ok(Some((frame, consumed)))` = yes, drop `consumed` bytes).
//!
//! Every malformed input is a typed [`FrameError`] — short reads,
//! oversized lengths, non-numeric headers, unparseable hellos — never a
//! panic: these parsers sit on the listening side of the wire where
//! arbitrary bytes arrive.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Default ceiling on a frame's payload size. A monitoring tick for
/// thousands of tenants batches to well under a megabyte; anything near
/// this limit is a bug or an attack, and is refused before allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// The longest header accepted, in bytes (digits only). 10 digits cover
/// every length up to ~9.9 GB — far beyond any accepted frame — so the
/// header scan is bounded even against a stream of garbage digits.
const MAX_HEADER_DIGITS: usize = 10;

/// Longest accepted hello line, in bytes, `\n` included. The longest
/// legal hello (`SPQ/1 json\n`) is 11 bytes; the bound stops a hostile
/// stream that starts with `S` and never sends a newline.
pub const MAX_HELLO_BYTES: usize = 32;

/// The protocol-version token every hello line leads with (PROTOCOL.md
/// §2.1): bump the digit for a breaking wire revision.
pub const HELLO_PREFIX: &str = "SPQ/1";

/// The frame format of one connection, negotiated by the hello exchange
/// (PROTOCOL.md §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Newline-JSON frames (§3): human-readable, `nc`-friendly, and the
    /// format legacy no-hello connections get.
    Json,
    /// Length-prefixed binary frames (§4) carrying the compact envelope
    /// encoding of [`crate::binary`].
    Binary,
}

impl Codec {
    /// The codec's token in hello lines (§2.1): `json` or `bin`.
    pub fn wire_name(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "bin",
        }
    }

    /// Parses a hello-line codec token.
    pub fn from_wire_name(name: &str) -> Option<Codec> {
        match name {
            "json" => Some(Codec::Json),
            "bin" => Some(Codec::Binary),
            _ => None,
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The length header is not a bounded decimal number.
    BadHeader(String),
    /// The declared length exceeds the configured maximum.
    TooLarge {
        /// Length the header declared.
        declared: usize,
        /// Maximum the reader accepts.
        max: usize,
    },
    /// The stream ended inside a frame (header or payload).
    Truncated {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// The byte after the payload was not the `\n` terminator: reader and
    /// writer disagree about the payload length.
    MissingTerminator,
    /// The payload is not valid UTF-8.
    NotUtf8(std::string::FromUtf8Error),
    /// The hello exchange failed: the line is malformed, names an
    /// unknown protocol version or codec, or the server refused it.
    BadHello(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::BadHeader(h) => write!(f, "bad length header {h:?}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated { context } => {
                write!(f, "stream ended mid-frame (while reading {context})")
            }
            FrameError::MissingTerminator => {
                write!(f, "payload not followed by the `\\n` terminator")
            }
            FrameError::NotUtf8(e) => write!(f, "payload is not UTF-8: {e}"),
            FrameError::BadHello(msg) => write!(f, "hello failed: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame. The caller flushes (frames are usually batched with
/// a `BufWriter` and flushed once per exchange).
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let mut header = payload.len().to_string();
    header.push('\n');
    w.write_all(header.as_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")
}

/// Appends one JSON frame to an in-memory write buffer — the reactor's
/// write path, where [`write_frame`]'s `io::Error` has no failure mode
/// and would otherwise force an `expect` on the hot path.
pub fn write_frame_vec(buf: &mut Vec<u8>, payload: &str) {
    buf.extend_from_slice(payload.len().to_string().as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(payload.as_bytes());
    buf.push(b'\n');
}

/// Reads one frame, enforcing `max` on the declared payload length.
///
/// Returns `Ok(None)` on a clean end of stream *at a frame boundary*
/// (the peer closed between frames); an end of stream anywhere inside a
/// frame is [`FrameError::Truncated`].
pub fn read_frame<R: BufRead>(r: &mut R, max: usize) -> Result<Option<String>, FrameError> {
    // Header: digits up to '\n', with the scan bounded so a hostile
    // stream of digits cannot grow the buffer.
    let mut header = Vec::with_capacity(MAX_HEADER_DIGITS + 1);
    let took = r
        .by_ref()
        .take(MAX_HEADER_DIGITS as u64 + 1)
        .read_until(b'\n', &mut header)?;
    if took == 0 {
        return Ok(None);
    }
    if header.last() != Some(&b'\n') {
        // Either the bounded scan ran out of budget (header too long) or
        // the stream ended mid-header.
        return if took > MAX_HEADER_DIGITS {
            Err(FrameError::BadHeader(printable(&header)))
        } else {
            Err(FrameError::Truncated { context: "header" })
        };
    }
    header.pop();
    let declared =
        parse_header_digits(&header).ok_or_else(|| FrameError::BadHeader(printable(&header)))?;
    let declared = usize::try_from(declared).map_err(|_| FrameError::TooLarge {
        declared: usize::MAX,
        max,
    })?;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }

    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated { context: "payload" }
        } else {
            FrameError::Io(e)
        }
    })?;

    let mut terminator = [0u8; 1];
    r.read_exact(&mut terminator).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated {
                context: "terminator",
            }
        } else {
            FrameError::Io(e)
        }
    })?;
    if terminator != [b'\n'] {
        return Err(FrameError::MissingTerminator);
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(FrameError::NotUtf8)
}

fn printable(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Folds a length header's ASCII digits into a `u64` directly — no UTF-8
/// round-trip, no slicing, no panic path. `None` for empty input, any
/// non-digit byte, or more than [`MAX_HEADER_DIGITS`] digits (whose
/// maximum value, 9 999 999 999, cannot overflow the fold).
fn parse_header_digits(header: &[u8]) -> Option<u64> {
    if header.is_empty() || header.len() > MAX_HEADER_DIGITS {
        return None;
    }
    let mut n: u64 = 0;
    for &b in header {
        if !b.is_ascii_digit() {
            return None;
        }
        n = n * 10 + u64::from(b - b'0');
    }
    Some(n)
}

// ---------------------------------------------------------------------------
// Binary framing (PROTOCOL.md §4)
// ---------------------------------------------------------------------------

/// Writes one binary frame: 4-byte little-endian payload length, then the
/// payload. The caller flushes.
pub fn write_binary_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "binary frame payload exceeds u32::MAX",
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Appends one binary frame to an in-memory write buffer; the infallible
/// twin of [`write_binary_frame`]. The length prefix saturates at
/// `u32::MAX` for payloads the wire format cannot represent — the
/// protocol encoder never produces one (responses sit far below
/// [`MAX_FRAME_BYTES`]), and if it ever did the peer's length check
/// would reject the frame instead of this side panicking mid-reactor.
pub fn write_binary_frame_vec(buf: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Reads one binary frame, enforcing `max` on the declared length.
/// `Ok(None)` on clean EOF at a frame boundary; EOF inside a frame is
/// [`FrameError::Truncated`].
pub fn read_binary_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        // spq-lint: allow(panic-index) — the loop condition bounds `filled` within the array
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated { context: "header" }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let declared = u32::from_le_bytes(header) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated { context: "payload" }
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Hello negotiation (PROTOCOL.md §2)
// ---------------------------------------------------------------------------

/// The client's hello line for `codec`: `SPQ/1 <codec>\n`.
pub fn hello_line(codec: Codec) -> String {
    format!("{HELLO_PREFIX} {}\n", codec.wire_name())
}

/// The server's acknowledgement line for `codec`: `SPQ/1 ok <codec>\n`.
pub fn hello_ack_line(codec: Codec) -> String {
    format!("{HELLO_PREFIX} ok {}\n", codec.wire_name())
}

/// The server's refusal line: `SPQ/1 err <reason>\n`, written just
/// before the connection is closed.
pub fn hello_err_line(reason: &str) -> String {
    format!("{HELLO_PREFIX} err {reason}\n")
}

/// Writes the client hello. The caller flushes.
pub fn write_hello<W: Write>(w: &mut W, codec: Codec) -> io::Result<()> {
    w.write_all(hello_line(codec).as_bytes())
}

/// Reads and validates the server's hello acknowledgement, returning the
/// codec the server committed to. A refusal (`SPQ/1 err …`) or anything
/// unparseable is [`FrameError::BadHello`].
pub fn read_hello_ack<R: BufRead>(r: &mut R) -> Result<Codec, FrameError> {
    let mut line = Vec::with_capacity(MAX_HELLO_BYTES);
    let took = r
        .by_ref()
        .take(MAX_HELLO_BYTES as u64)
        .read_until(b'\n', &mut line)?;
    if took == 0 {
        return Err(FrameError::Truncated {
            context: "hello ack",
        });
    }
    if line.last() != Some(&b'\n') {
        return Err(if took >= MAX_HELLO_BYTES {
            FrameError::BadHello(format!("oversized ack {:?}", printable(&line)))
        } else {
            FrameError::Truncated {
                context: "hello ack",
            }
        });
    }
    line.pop();
    let text = String::from_utf8(line).map_err(FrameError::NotUtf8)?;
    let mut words = text.split(' ');
    match (words.next(), words.next(), words.next(), words.next()) {
        (Some(HELLO_PREFIX), Some("ok"), Some(name), None) => Codec::from_wire_name(name)
            .ok_or_else(|| FrameError::BadHello(format!("ack names unknown codec {name:?}"))),
        (Some(HELLO_PREFIX), Some("err"), reason, _) => Err(FrameError::BadHello(format!(
            "server refused: {}",
            reason.unwrap_or("(no reason)")
        ))),
        _ => Err(FrameError::BadHello(format!("unparseable ack {text:?}"))),
    }
}

/// What the first bytes of a connection turned out to be (PROTOCOL.md
/// §2.2–2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HelloOutcome {
    /// An explicit `SPQ/1 <codec>` hello; the server must acknowledge
    /// with [`hello_ack_line`] before any response frame.
    Hello(Codec),
    /// No hello: the first byte is a decimal digit, i.e. a legacy JSON
    /// frame header. The connection speaks [`Codec::Json`] and gets no
    /// acknowledgement line. Zero bytes are consumed.
    Legacy,
}

/// Incremental hello detection over a connection's first buffered bytes.
///
/// Returns `Ok(None)` while the buffer cannot be classified yet (empty,
/// or a hello line still missing its `\n`), `Ok(Some((outcome, consumed)))`
/// once it can, and [`FrameError::BadHello`] for byte streams that are
/// neither a hello nor a JSON frame header.
pub fn decode_hello(buf: &[u8]) -> Result<Option<(HelloOutcome, usize)>, FrameError> {
    let Some(&first) = buf.first() else {
        return Ok(None);
    };
    if first.is_ascii_digit() {
        return Ok(Some((HelloOutcome::Legacy, 0)));
    }
    if first != b'S' {
        return Err(FrameError::BadHello(format!(
            "connection opened with byte 0x{first:02x}, neither a hello nor a frame header"
        )));
    }
    let Some(newline) = buf.iter().take(MAX_HELLO_BYTES).position(|&b| b == b'\n') else {
        return if buf.len() >= MAX_HELLO_BYTES {
            Err(FrameError::BadHello("unterminated hello line".to_string()))
        } else {
            Ok(None)
        };
    };
    let line = std::str::from_utf8(buf.get(..newline).unwrap_or(buf))
        .map_err(|_| FrameError::BadHello("hello line is not UTF-8".to_string()))?;
    let mut words = line.split(' ');
    match (words.next(), words.next(), words.next()) {
        (Some(HELLO_PREFIX), Some(name), None) => match Codec::from_wire_name(name) {
            Some(codec) => Ok(Some((HelloOutcome::Hello(codec), newline + 1))),
            None => Err(FrameError::BadHello(format!("unknown codec {name:?}"))),
        },
        (Some(version), _, _) if version != HELLO_PREFIX => Err(FrameError::BadHello(format!(
            "unknown protocol version {version:?}"
        ))),
        _ => Err(FrameError::BadHello(format!("unparseable hello {line:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Incremental frame decoding (the reactor's read path)
// ---------------------------------------------------------------------------

/// Tries to decode one JSON frame (§3) from the front of `buf` without
/// consuming it. `Ok(None)` = the frame is incomplete, keep reading;
/// `Ok(Some((payload, consumed)))` = one frame, drop `consumed` bytes.
pub fn decode_json_frame(buf: &[u8], max: usize) -> Result<Option<(String, usize)>, FrameError> {
    let Some(newline) = buf
        .iter()
        .take(MAX_HEADER_DIGITS + 1)
        .position(|&b| b == b'\n')
    else {
        return if buf.len() > MAX_HEADER_DIGITS {
            let shown = buf.get(..=MAX_HEADER_DIGITS).unwrap_or(buf);
            Err(FrameError::BadHeader(printable(shown)))
        } else {
            Ok(None)
        };
    };
    let header = buf.get(..newline).unwrap_or(buf);
    let declared =
        parse_header_digits(header).ok_or_else(|| FrameError::BadHeader(printable(header)))?;
    let declared = usize::try_from(declared).map_err(|_| FrameError::TooLarge {
        declared: usize::MAX,
        max,
    })?;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    // header + '\n' + payload + '\n'; `get` returns None while the frame
    // is still incomplete, replacing an explicit length check.
    let total = newline + 1 + declared + 1;
    let Some(frame) = buf.get(..total) else {
        return Ok(None);
    };
    if frame.last() != Some(&b'\n') {
        return Err(FrameError::MissingTerminator);
    }
    let body = frame.get(newline + 1..total - 1).unwrap_or_default();
    let payload = String::from_utf8(body.to_vec()).map_err(FrameError::NotUtf8)?;
    Ok(Some((payload, total)))
}

/// Tries to decode one binary frame (§4) from the front of `buf` without
/// consuming it; same contract as [`decode_json_frame`].
pub fn decode_binary_frame(buf: &[u8], max: usize) -> Result<Option<(Vec<u8>, usize)>, FrameError> {
    let Some(header) = buf.first_chunk::<4>() else {
        return Ok(None);
    };
    let declared = u32::from_le_bytes(*header) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let total = 4 + declared;
    match buf.get(4..total) {
        Some(payload) => Ok(Some((payload.to_vec(), total))),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: &str) -> String {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).expect("write");
        let mut r = Cursor::new(buf);
        read_frame(&mut r, MAX_FRAME_BYTES)
            .expect("read")
            .expect("one frame")
    }

    #[test]
    fn frames_roundtrip() {
        for payload in ["", "{}", "{\"a\":1.0}", "päylöad \u{1F600}", "a\nb\nc"] {
            assert_eq!(roundtrip(payload), payload);
        }
    }

    #[test]
    fn wire_shape_is_length_newline_payload_newline() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"x\":1.0}").unwrap();
        assert_eq!(buf, b"9\n{\"x\":1.0}\n");
    }

    #[test]
    fn vec_writers_emit_the_same_bytes_as_the_io_writers() {
        let mut io_buf = Vec::new();
        write_frame(&mut io_buf, "{\"x\":1.0}").unwrap();
        let mut vec_buf = Vec::new();
        write_frame_vec(&mut vec_buf, "{\"x\":1.0}");
        assert_eq!(io_buf, vec_buf);

        let mut io_buf = Vec::new();
        write_binary_frame(&mut io_buf, &[0xff, 0x00, 0x7f]).unwrap();
        let mut vec_buf = Vec::new();
        write_binary_frame_vec(&mut vec_buf, &[0xff, 0x00, 0x7f]);
        assert_eq!(io_buf, vec_buf);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "one").unwrap();
        write_frame(&mut buf, "two").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), "one");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), "two");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn clean_eof_is_none_but_truncation_errors() {
        let mut empty = Cursor::new(Vec::new());
        assert!(read_frame(&mut empty, 64).unwrap().is_none());

        // Every proper prefix of a valid frame must error, never panic,
        // never return a frame.
        let mut full = Vec::new();
        write_frame(&mut full, "payload").unwrap();
        for cut in 1..full.len() {
            let mut r = Cursor::new(full[..cut].to_vec());
            let out = read_frame(&mut r, 64);
            assert!(out.is_err(), "prefix of {cut} bytes must error");
        }
    }

    #[test]
    fn oversized_and_garbage_headers_are_rejected() {
        let mut r = Cursor::new(b"999999999999999999999\npayload".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::BadHeader(_))
        ));
        let mut r = Cursor::new(b"12a\npayload".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::BadHeader(_))
        ));
        let mut r = Cursor::new(b"\npayload".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::BadHeader(_))
        ));
        let mut r = Cursor::new(b"100\nxxx".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::TooLarge {
                declared: 100,
                max: 64
            })
        ));
    }

    #[test]
    fn length_mismatch_is_detected() {
        // Header says 2 bytes but the payload is 3: the terminator check
        // catches the disagreement.
        let mut r = Cursor::new(b"2\nabc\n".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::MissingTerminator)
        ));
    }

    #[test]
    fn non_utf8_payloads_error() {
        let mut r = Cursor::new(b"2\n\xff\xfe\n".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::NotUtf8(_))
        ));
    }

    // --- binary framing (PROTOCOL.md §4) ---

    #[test]
    fn binary_frames_roundtrip_and_stream() {
        let mut buf = Vec::new();
        write_binary_frame(&mut buf, b"").unwrap();
        write_binary_frame(&mut buf, &[0xff, 0x00, 0x7f]).unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 0], "little-endian length prefix");
        assert_eq!(&buf[4..8], &[3, 0, 0, 0]);
        let mut r = Cursor::new(buf);
        assert_eq!(read_binary_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert_eq!(
            read_binary_frame(&mut r, 64).unwrap().unwrap(),
            vec![0xff, 0x00, 0x7f]
        );
        assert!(
            read_binary_frame(&mut r, 64).unwrap().is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn binary_truncation_and_oversize_error() {
        let mut full = Vec::new();
        write_binary_frame(&mut full, b"payload").unwrap();
        for cut in 1..full.len() {
            let mut r = Cursor::new(full[..cut].to_vec());
            assert!(
                read_binary_frame(&mut r, 64).is_err(),
                "prefix of {cut} bytes must error"
            );
        }
        let mut r = Cursor::new(100u32.to_le_bytes().to_vec());
        assert!(matches!(
            read_binary_frame(&mut r, 64),
            Err(FrameError::TooLarge {
                declared: 100,
                max: 64
            })
        ));
    }

    // --- hello negotiation (PROTOCOL.md §2) ---

    #[test]
    fn hello_lines_are_the_documented_bytes() {
        assert_eq!(hello_line(Codec::Json), "SPQ/1 json\n");
        assert_eq!(hello_line(Codec::Binary), "SPQ/1 bin\n");
        assert_eq!(hello_ack_line(Codec::Binary), "SPQ/1 ok bin\n");
        assert_eq!(
            hello_err_line("unsupported-codec"),
            "SPQ/1 err unsupported-codec\n"
        );
    }

    #[test]
    fn decode_hello_classifies_hello_legacy_and_garbage() {
        // Explicit hellos, both codecs.
        assert_eq!(
            decode_hello(b"SPQ/1 bin\n0000").unwrap(),
            Some((HelloOutcome::Hello(Codec::Binary), 10))
        );
        assert_eq!(
            decode_hello(b"SPQ/1 json\n").unwrap(),
            Some((HelloOutcome::Hello(Codec::Json), 11))
        );
        // A legacy connection's first byte is a JSON frame header digit:
        // classified without consuming anything (§2.3).
        assert_eq!(
            decode_hello(b"9\n{\"x\":1.0}\n").unwrap(),
            Some((HelloOutcome::Legacy, 0))
        );
        // Not classifiable yet: empty, or a hello missing its newline.
        assert_eq!(decode_hello(b"").unwrap(), None);
        assert_eq!(decode_hello(b"SPQ/1 bi").unwrap(), None);
        // Garbage first bytes, unknown codecs and versions are errors.
        assert!(matches!(
            decode_hello(b"not a frame at all\n"),
            Err(FrameError::BadHello(_))
        ));
        assert!(matches!(
            decode_hello(b"SPQ/1 gzip\n"),
            Err(FrameError::BadHello(_))
        ));
        assert!(matches!(
            decode_hello(b"SPQ/9 json\n"),
            Err(FrameError::BadHello(_))
        ));
        // An unterminated "hello" cannot grow forever.
        let endless = vec![b'S'; MAX_HELLO_BYTES + 4];
        assert!(matches!(
            decode_hello(&endless),
            Err(FrameError::BadHello(_))
        ));
    }

    #[test]
    fn hello_ack_reader_accepts_ok_and_rejects_err() {
        let mut r = Cursor::new(hello_ack_line(Codec::Binary).into_bytes());
        assert_eq!(read_hello_ack(&mut r).unwrap(), Codec::Binary);
        let mut r = Cursor::new(hello_err_line("unsupported-codec").into_bytes());
        assert!(matches!(
            read_hello_ack(&mut r),
            Err(FrameError::BadHello(_))
        ));
        let mut r = Cursor::new(b"HTTP/1.1 200 OK\n".to_vec());
        assert!(matches!(
            read_hello_ack(&mut r),
            Err(FrameError::BadHello(_))
        ));
        let mut r = Cursor::new(Vec::new());
        assert!(matches!(
            read_hello_ack(&mut r),
            Err(FrameError::Truncated { .. })
        ));
    }

    // --- incremental decoders (the reactor's read path) ---

    #[test]
    fn incremental_json_decode_agrees_with_the_blocking_reader() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "{\"x\":1.0}").unwrap();
        write_frame(&mut wire, "two").unwrap();
        // Every proper prefix is incomplete, never an error.
        for cut in 0..12 {
            assert_eq!(decode_json_frame(&wire[..cut], 64).unwrap(), None, "{cut}");
        }
        let (payload, consumed) = decode_json_frame(&wire, 64).unwrap().unwrap();
        assert_eq!(payload, "{\"x\":1.0}");
        let (payload2, consumed2) = decode_json_frame(&wire[consumed..], 64).unwrap().unwrap();
        assert_eq!(payload2, "two");
        assert_eq!(consumed + consumed2, wire.len());
    }

    #[test]
    fn incremental_json_decode_rejects_what_the_blocking_reader_rejects() {
        assert!(matches!(
            decode_json_frame(b"999999999999999999999\nx", 64),
            Err(FrameError::BadHeader(_))
        ));
        assert!(matches!(
            decode_json_frame(b"12a\nx", 64),
            Err(FrameError::BadHeader(_))
        ));
        assert!(matches!(
            decode_json_frame(b"\nx", 64),
            Err(FrameError::BadHeader(_))
        ));
        assert!(matches!(
            decode_json_frame(b"100\n", 64),
            Err(FrameError::TooLarge {
                declared: 100,
                max: 64
            })
        ));
        assert!(matches!(
            decode_json_frame(b"2\nabc\n", 64),
            Err(FrameError::MissingTerminator)
        ));
        assert!(matches!(
            decode_json_frame(b"2\n\xff\xfe\n", 64),
            Err(FrameError::NotUtf8(_))
        ));
    }

    #[test]
    fn incremental_binary_decode_streams_and_bounds() {
        let mut wire = Vec::new();
        write_binary_frame(&mut wire, &[1, 2, 3]).unwrap();
        write_binary_frame(&mut wire, &[]).unwrap();
        for cut in 0..7 {
            assert_eq!(
                decode_binary_frame(&wire[..cut], 64).unwrap(),
                None,
                "{cut}"
            );
        }
        let (payload, consumed) = decode_binary_frame(&wire, 64).unwrap().unwrap();
        assert_eq!(payload, vec![1, 2, 3]);
        let (payload2, consumed2) = decode_binary_frame(&wire[consumed..], 64).unwrap().unwrap();
        assert_eq!(payload2, Vec::<u8>::new());
        assert_eq!(consumed + consumed2, wire.len());
        assert!(matches!(
            decode_binary_frame(&100u32.to_le_bytes(), 64),
            Err(FrameError::TooLarge { .. })
        ));
    }
}
