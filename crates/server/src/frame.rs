//! Length-prefixed newline-JSON framing.
//!
//! A frame on the wire is
//!
//! ```text
//! <decimal payload length>\n
//! <payload: exactly that many bytes of UTF-8 JSON>\n
//! ```
//!
//! The length prefix lets the reader allocate once and pull the payload
//! with `read_exact` — no scanning for delimiters inside the JSON — while
//! the newline after the header and after the payload keep a captured
//! stream line-readable (`nc`-friendly, diffable, greppable). The
//! trailing newline doubles as a cheap integrity check: if it is missing
//! the peer and we disagree about the length, and the connection must be
//! dropped rather than resynchronized.
//!
//! Every malformed input is a typed [`FrameError`] — short reads,
//! oversized lengths, non-numeric headers — never a panic: this parser
//! sits on the listening side of the wire where arbitrary bytes arrive.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Default ceiling on a frame's payload size. A monitoring tick for
/// thousands of tenants batches to well under a megabyte; anything near
/// this limit is a bug or an attack, and is refused before allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// The longest header accepted, in bytes (digits only). 10 digits cover
/// every length up to ~9.9 GB — far beyond any accepted frame — so the
/// header scan is bounded even against a stream of garbage digits.
const MAX_HEADER_DIGITS: usize = 10;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The length header is not a bounded decimal number.
    BadHeader(String),
    /// The declared length exceeds the configured maximum.
    TooLarge {
        /// Length the header declared.
        declared: usize,
        /// Maximum the reader accepts.
        max: usize,
    },
    /// The stream ended inside a frame (header or payload).
    Truncated {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// The byte after the payload was not the `\n` terminator: reader and
    /// writer disagree about the payload length.
    MissingTerminator,
    /// The payload is not valid UTF-8.
    NotUtf8(std::string::FromUtf8Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::BadHeader(h) => write!(f, "bad length header {h:?}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated { context } => {
                write!(f, "stream ended mid-frame (while reading {context})")
            }
            FrameError::MissingTerminator => {
                write!(f, "payload not followed by the `\\n` terminator")
            }
            FrameError::NotUtf8(e) => write!(f, "payload is not UTF-8: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame. The caller flushes (frames are usually batched with
/// a `BufWriter` and flushed once per exchange).
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let mut header = payload.len().to_string();
    header.push('\n');
    w.write_all(header.as_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")
}

/// Reads one frame, enforcing `max` on the declared payload length.
///
/// Returns `Ok(None)` on a clean end of stream *at a frame boundary*
/// (the peer closed between frames); an end of stream anywhere inside a
/// frame is [`FrameError::Truncated`].
pub fn read_frame<R: BufRead>(r: &mut R, max: usize) -> Result<Option<String>, FrameError> {
    // Header: digits up to '\n', with the scan bounded so a hostile
    // stream of digits cannot grow the buffer.
    let mut header = Vec::with_capacity(MAX_HEADER_DIGITS + 1);
    let took = r
        .by_ref()
        .take(MAX_HEADER_DIGITS as u64 + 1)
        .read_until(b'\n', &mut header)?;
    if took == 0 {
        return Ok(None);
    }
    if header.last() != Some(&b'\n') {
        // Either the bounded scan ran out of budget (header too long) or
        // the stream ended mid-header.
        return if took > MAX_HEADER_DIGITS {
            Err(FrameError::BadHeader(printable(&header)))
        } else {
            Err(FrameError::Truncated { context: "header" })
        };
    }
    header.pop();
    if header.is_empty() || !header.iter().all(u8::is_ascii_digit) {
        return Err(FrameError::BadHeader(printable(&header)));
    }
    // ≤ 10 ASCII digits always parse as u64; the range check is ours.
    let declared = std::str::from_utf8(&header)
        .expect("digits are UTF-8")
        .parse::<u64>()
        .map_err(|_| FrameError::BadHeader(printable(&header)))?;
    let declared = usize::try_from(declared).map_err(|_| FrameError::TooLarge {
        declared: usize::MAX,
        max,
    })?;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }

    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated { context: "payload" }
        } else {
            FrameError::Io(e)
        }
    })?;

    let mut terminator = [0u8; 1];
    r.read_exact(&mut terminator).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated {
                context: "terminator",
            }
        } else {
            FrameError::Io(e)
        }
    })?;
    if terminator[0] != b'\n' {
        return Err(FrameError::MissingTerminator);
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(FrameError::NotUtf8)
}

fn printable(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: &str) -> String {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).expect("write");
        let mut r = Cursor::new(buf);
        read_frame(&mut r, MAX_FRAME_BYTES)
            .expect("read")
            .expect("one frame")
    }

    #[test]
    fn frames_roundtrip() {
        for payload in ["", "{}", "{\"a\":1.0}", "päylöad \u{1F600}", "a\nb\nc"] {
            assert_eq!(roundtrip(payload), payload);
        }
    }

    #[test]
    fn wire_shape_is_length_newline_payload_newline() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"x\":1.0}").unwrap();
        assert_eq!(buf, b"9\n{\"x\":1.0}\n");
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "one").unwrap();
        write_frame(&mut buf, "two").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), "one");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), "two");
        assert!(read_frame(&mut r, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn clean_eof_is_none_but_truncation_errors() {
        let mut empty = Cursor::new(Vec::new());
        assert!(read_frame(&mut empty, 64).unwrap().is_none());

        // Every proper prefix of a valid frame must error, never panic,
        // never return a frame.
        let mut full = Vec::new();
        write_frame(&mut full, "payload").unwrap();
        for cut in 1..full.len() {
            let mut r = Cursor::new(full[..cut].to_vec());
            let out = read_frame(&mut r, 64);
            assert!(out.is_err(), "prefix of {cut} bytes must error");
        }
    }

    #[test]
    fn oversized_and_garbage_headers_are_rejected() {
        let mut r = Cursor::new(b"999999999999999999999\npayload".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::BadHeader(_))
        ));
        let mut r = Cursor::new(b"12a\npayload".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::BadHeader(_))
        ));
        let mut r = Cursor::new(b"\npayload".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::BadHeader(_))
        ));
        let mut r = Cursor::new(b"100\nxxx".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::TooLarge {
                declared: 100,
                max: 64
            })
        ));
    }

    #[test]
    fn length_mismatch_is_detected() {
        // Header says 2 bytes but the payload is 3: the terminator check
        // catches the disagreement.
        let mut r = Cursor::new(b"2\nabc\n".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::MissingTerminator)
        ));
    }

    #[test]
    fn non_utf8_payloads_error() {
        let mut r = Cursor::new(b"2\n\xff\xfe\n".to_vec());
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::NotUtf8(_))
        ));
    }
}
