//! A standalone durable SpeQuloS server — the process the crash-injection
//! suite starts, `SIGKILL`s mid-run, and restarts against the same WAL
//! directory (`tests/crash_recovery.rs`).
//!
//! ```text
//! durable_server --dir <wal-dir> [--addr 127.0.0.1:0] [--pool N]
//!                [--tick-ms N] [--snapshot-every N] [--no-fsync]
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once the socket is bound (the
//! test harness parses this line for the ephemeral port), then serves
//! until killed. The service template is assembled from the command-line
//! flags; a restart must pass the same flags so recovery validates
//! against an identically configured template.

use simcore::SimDuration;
use spequlos::wal::FsyncPolicy;
use spequlos::SpeQuloS;
use spq_server::server::DurabilityConfig;
use spq_server::{Server, ServerConfig};
use std::io::Write;

fn usage(msg: &str) -> ! {
    eprintln!("durable_server: {msg}");
    eprintln!(
        "usage: durable_server --dir <wal-dir> [--addr HOST:PORT] [--pool N] \
         [--tick-ms N] [--snapshot-every N] [--no-fsync]"
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a valid value")))
}

fn main() {
    let mut dir: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut pool: Option<u32> = None;
    let mut tick_ms: Option<u64> = None;
    let mut snapshot_every: u64 = 4096;
    let mut fsync = FsyncPolicy::Always;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = Some(parse_value("--dir", args.next())),
            "--addr" => addr = parse_value("--addr", args.next()),
            "--pool" => pool = Some(parse_value("--pool", args.next())),
            "--tick-ms" => tick_ms = Some(parse_value("--tick-ms", args.next())),
            "--snapshot-every" => {
                snapshot_every = parse_value("--snapshot-every", args.next());
            }
            "--no-fsync" => fsync = FsyncPolicy::Never,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    let Some(dir) = dir else {
        usage("--dir is required");
    };

    // The template must be assembled identically on every start of the
    // same WAL directory; recovery validates tick / strategy / pool
    // against the snapshot and refuses a mismatch.
    let mut builder = SpeQuloS::builder();
    if let Some(capacity) = pool {
        builder = builder.pool(capacity);
    }
    if let Some(ms) = tick_ms {
        builder = builder.tick(SimDuration::from_millis(ms));
    }
    let template = builder.build();

    let durability = DurabilityConfig {
        dir: dir.into(),
        fsync,
        snapshot_every,
    };
    let (handle, report) =
        match Server::spawn_durable(template, &addr, ServerConfig::default(), durability) {
            Ok(started) => started,
            Err(e) => {
                eprintln!("durable_server: failed to start: {e}");
                std::process::exit(1);
            }
        };
    eprintln!(
        "recovered: snapshot_applied={} replayed={} truncated_bytes={} snapshots_discarded={}",
        report.snapshot_applied,
        report.replayed,
        report.truncated_bytes,
        report.snapshots_discarded
    );
    println!("LISTENING {}", handle.addr());
    let _ = std::io::stdout().flush();

    // Serve until killed: the crash suite terminates this process with
    // SIGKILL, never gracefully.
    loop {
        std::thread::park();
    }
}
