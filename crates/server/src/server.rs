//! The multi-client protocol server: a poll-based reactor.
//!
//! One I/O thread — the *reactor* — owns the listener, every connection,
//! and the [`SpeQuloS`] service itself. It parks in `poll(2)` (via the
//! vendored [`polling`] shim) until a socket is ready, moves bytes
//! between per-connection read/write buffers and the kernel, and
//! dispatches each complete request *inline*: decode → (durable append)
//! → `service.handle` → encode, with no cross-thread handoff anywhere on
//! the request path. That is how one thread services thousands of
//! connections where the previous design spent two threads per
//! connection plus a mailbox hop per request (that design survives as
//! [`Server::spawn_threaded`], kept as the benchmark baseline —
//! `repro_protocol` measures the two against each other).
//!
//! Each connection negotiates its frame format with a first-line hello
//! (PROTOCOL.md §2): newline-JSON frames (§3) or length-prefixed binary
//! frames (§4) carrying the compact envelope encoding of
//! [`crate::binary`]. A connection that opens with a bare digit — a JSON
//! frame header — is a legacy client and speaks JSON with no hello
//! exchange (§2.3), which keeps `nc` sessions and pre-negotiation
//! clients working.
//!
//! Ordering guarantees are unchanged from the threaded design: FIFO per
//! connection (frames are decoded and served in arrival order from the
//! connection's read buffer), global order = the order the reactor
//! drains readiness events, and a `Request::Batch` is served atomically
//! because `service.handle` sees it as one request. Backpressure is now
//! per-connection and byte-denominated (PROTOCOL.md §9): when a
//! connection's write buffer exceeds [`ServerConfig::write_highwater`],
//! the reactor stops reading *that* socket — kernel buffers fill, TCP
//! flow control pushes back on that client — while every other
//! connection proceeds undisturbed.
//!
//! Durability composes exactly as before: [`Server::spawn_durable`]
//! appends each request to the write-ahead log *before* dispatching it,
//! inline on the reactor thread, so "acknowledged ⇒ durable" holds
//! per-request with no reordering window (a reply cannot even be
//! *encoded* until the append returned).
//!
//! Shutdown recovers the service: [`ServerHandle::into_service`] wakes
//! the reactor, which drops the listener and every connection and
//! returns the `SpeQuloS` with all the state the request stream built —
//! how the harness pins remote runs bit-identical to in-process ones.

use crate::binary;
use crate::frame::{self, Codec, FrameError, HelloOutcome, MAX_FRAME_BYTES};
use crate::wire::{peek_id, RequestEnvelope, ResponseEnvelope};
use polling::{Event, Poller};
use spequlos::protocol::{RequestError, Response, SpqService};
use spequlos::wal::{FsyncPolicy, RecoveryReport, WalError, WalStore};
use spequlos::SpeQuloS;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server tuning knobs; [`ServerConfig::default`] suits tests and
/// loopback experiment runs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Mailbox depth of the legacy thread-per-connection backend
    /// ([`Server::spawn_threaded`]): how many decoded requests may wait
    /// for its dispatch loop before session threads block. The reactor
    /// does not use a mailbox; it backpressures by byte count
    /// ([`ServerConfig::write_highwater`]) instead.
    pub mailbox_depth: usize,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame_bytes: usize,
    /// Per-connection write-buffer high-water mark, in bytes
    /// (PROTOCOL.md §9). When a connection's buffered-but-unsent replies
    /// exceed this, the reactor stops reading that socket until the
    /// buffer drains, letting TCP flow control push back on that one
    /// client.
    pub write_highwater: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mailbox_depth: 64,
            max_frame_bytes: MAX_FRAME_BYTES,
            write_highwater: 256 * 1024,
        }
    }
}

/// Durability knobs for [`Server::spawn_durable`].
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the write-ahead log and snapshots (created if
    /// missing; reuse the same directory across restarts to recover).
    pub dir: PathBuf,
    /// When appends reach stable storage. [`FsyncPolicy::Always`] is the
    /// only setting under which an acknowledged request survives a crash.
    pub fsync: FsyncPolicy,
    /// Take a full-state snapshot every this many appended requests
    /// (0 disables snapshots; recovery then replays the whole log).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durable defaults for `dir`: fsync on every append, snapshot every
    /// 4096 requests.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 4096,
        }
    }
}

/// Why a durable server failed to start.
#[derive(Debug)]
pub enum DurableError {
    /// The write-ahead log could not be opened or recovery failed
    /// (corruption mid-log, snapshot/template configuration mismatch).
    Wal(WalError),
    /// Binding the listener failed.
    Io(io::Error),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "durable server: {e}"),
            DurableError::Io(e) => write!(f, "durable server: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// Runtime durability state owned by the reactor (or, for the legacy
/// backend, its dispatch loop).
pub(crate) struct DurableState {
    pub(crate) wal: WalStore,
    pub(crate) snapshot_every: u64,
    pub(crate) since_snapshot: u64,
}

/// Per-request timing observer for [`Server::spawn_observed`]: called
/// after each served request with the request's wire tag
/// ([`spequlos::protocol::Request::kind`]; batches report as `"batch"`)
/// and the wall-clock time `SpqService::handle` took — service time
/// only, excluding framing, buffering and socket I/O.
///
/// The observer runs on the reactor thread, between requests: keep it
/// cheap (a histogram record, a counter bump), because its cost is
/// serialized into the request path exactly like the service itself.
pub type RequestObserver = Box<dyn FnMut(&'static str, std::time::Duration) + Send>;

/// Factory for protocol servers; see the [module docs](self).
pub struct Server;

impl Server {
    /// Binds `addr` and serves `service` until the returned handle shuts
    /// down. `addr` may be anything `ToSocketAddrs` accepts —
    /// `"127.0.0.1:0"` picks a free loopback port (see
    /// [`ServerHandle::addr`]).
    pub fn spawn(
        service: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        Self::spawn_inner(service, addr, config, None, None)
    }

    /// Binds `addr` and serves a *durable* service: every request is
    /// appended to the write-ahead log in `durability.dir` — and, under
    /// [`FsyncPolicy::Always`], fsynced — *before* it is dispatched, so
    /// an acknowledged request survives a crash of the whole process.
    ///
    /// If the directory already holds state from a previous run, it is
    /// recovered first — newest usable snapshot plus log-tail replay
    /// through the ordinary request path — and `template` must be a
    /// service assembled with the same builder configuration as the one
    /// that wrote it. The returned [`RecoveryReport`] says where the
    /// state came from.
    ///
    /// A failed append is answered with a typed
    /// [`RequestError::Transport`] error and the request is *not*
    /// dispatched: the client knows durability was not achieved, and the
    /// on-disk log never lags the in-memory state. Snapshot failures are
    /// non-fatal (the log alone recovers exactly); they only cost
    /// recovery time.
    pub fn spawn_durable(
        template: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> Result<(ServerHandle, RecoveryReport), DurableError> {
        let (wal, recovery) = WalStore::open(&durability.dir, durability.fsync)?;
        let (service, report) = recovery.recover(template)?;
        let durable = DurableState {
            wal,
            snapshot_every: durability.snapshot_every,
            since_snapshot: 0,
        };
        let handle = Self::spawn_inner(service, addr, config, None, Some(durable))?;
        Ok((handle, report))
    }

    /// [`Server::spawn`] with a per-request timing hook: `observer` sees
    /// every request the reactor serves (kind tag + service time). This
    /// is how the load generator's `repro_load` separates *service* time
    /// from *sojourn* time — under open-loop overload the client-side
    /// latency explodes while the per-request service time stays flat,
    /// which is the signature of queueing collapse rather than a slow
    /// handler. Timing adds two `Instant::now` calls per request; servers
    /// spawned without an observer skip them entirely.
    pub fn spawn_observed(
        service: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        observer: RequestObserver,
    ) -> io::Result<ServerHandle> {
        Self::spawn_inner(service, addr, config, Some(observer), None)
    }

    fn spawn_inner(
        service: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        observer: Option<RequestObserver>,
        durable: Option<DurableState>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let poller = Arc::new(Poller::new()?);
        poller.add(&listener, Event::readable(reactor::LISTENER_KEY))?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let thread = {
            let poller = Arc::clone(&poller);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                reactor::Reactor::new(poller, listener, service, observer, durable, config)
                    .run(&shutdown)
            })
        };

        Ok(ServerHandle {
            addr,
            backend: Some(Backend::Reactor {
                shutdown,
                poller,
                thread,
            }),
        })
    }

    /// The previous thread-per-connection deployment, retained as the
    /// benchmark baseline `repro_protocol` compares the reactor against:
    /// one accept thread, one session thread per connection, a bounded
    /// mailbox ([`ServerConfig::mailbox_depth`]) into a single dispatch
    /// thread that owns the service.
    ///
    /// Legacy JSON only — it predates the hello exchange, so connect
    /// with [`crate::RemoteService::connect_legacy`]. Not durable, not
    /// observed. New deployments should not use this.
    pub fn spawn_threaded(
        service: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let (addr, parts) = threaded::spawn(service, addr, config)?;
        Ok(ServerHandle {
            addr,
            backend: Some(Backend::Threaded(parts)),
        })
    }

    /// [`Server::spawn`] on `127.0.0.1:0` with the default configuration —
    /// the loopback deployment the harness's `Transport::Loopback` mode
    /// and the integration tests use.
    pub fn spawn_loopback(service: SpeQuloS) -> io::Result<ServerHandle> {
        Server::spawn(service, "127.0.0.1:0", ServerConfig::default())
    }
}

enum Backend {
    Reactor {
        shutdown: Arc<AtomicBool>,
        poller: Arc<Poller>,
        thread: JoinHandle<SpeQuloS>,
    },
    Threaded(threaded::Parts),
}

/// A running server. Dropping the handle shuts the server down (and
/// discards the service); call [`ServerHandle::into_service`] to shut
/// down *and* recover the service state.
pub struct ServerHandle {
    addr: SocketAddr,
    backend: Option<Backend>,
}

impl ServerHandle {
    /// The bound address — with `"127.0.0.1:0"` this carries the actual
    /// port clients must connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and returns the service with every state change
    /// the request stream produced. In-flight requests finish first;
    /// connections still open are dropped.
    pub fn into_service(mut self) -> SpeQuloS {
        // spq-lint: allow(panic-unwrap) — `self` is consumed whole, so this is provably the first stop
        self.stop().expect("first stop returns the service")
    }

    /// Idempotent teardown; returns the service on the first call.
    fn stop(&mut self) -> Option<SpeQuloS> {
        match self.backend.take()? {
            Backend::Reactor {
                shutdown,
                poller,
                thread,
            } => {
                shutdown.store(true, Ordering::Release);
                let _ = poller.notify();
                // A join fails only if the reactor panicked; re-raise
                // that panic on this thread instead of minting a new one.
                Some(
                    thread
                        .join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic)),
                )
            }
            Backend::Threaded(parts) => Some(parts.stop(self.addr)),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

mod reactor {
    //! The event loop. Everything here runs on the one reactor thread;
    //! the only cross-thread touchpoints are the shutdown flag and
    //! `Poller::notify`.

    use super::*;

    /// Poller key of the listening socket; connections get `slot + 1`.
    pub(super) const LISTENER_KEY: usize = 0;

    /// How far a connection's first bytes have gotten (PROTOCOL.md §2).
    enum Phase {
        /// Nothing classified yet: the next bytes are a hello line or a
        /// legacy JSON frame header.
        AwaitHello,
        /// Negotiation done; every further frame uses this codec.
        Ready(Codec),
    }

    struct Conn {
        stream: TcpStream,
        phase: Phase,
        /// Bytes read but not yet decoded. `rpos` marks how much of the
        /// front has been consumed; the buffer compacts once per event
        /// so per-frame consumption is O(1), not O(buffer).
        rbuf: Vec<u8>,
        rpos: usize,
        /// Encoded replies not yet accepted by the kernel, `wpos` sent.
        wbuf: Vec<u8>,
        wpos: usize,
        /// Drain `wbuf`, then close (used for hello refusals, §2.2).
        close_after_flush: bool,
        /// The peer half-closed its write side (§1): serve what is
        /// buffered, flush every reply, then close — a client may
        /// pipeline its whole workload and shut down its write half to
        /// ask for exactly this drain.
        read_closed: bool,
    }

    impl Conn {
        fn pending_write(&self) -> usize {
            self.wbuf.len() - self.wpos
        }
    }

    /// What a connection event handler decided about the connection.
    enum Verdict {
        Keep,
        Close,
    }

    pub(super) struct Reactor {
        poller: Arc<Poller>,
        listener: TcpListener,
        conns: Vec<Option<Conn>>,
        free: Vec<usize>,
        service: SpeQuloS,
        observer: Option<RequestObserver>,
        durable: Option<DurableState>,
        max_frame: usize,
        highwater: usize,
    }

    impl Reactor {
        pub(super) fn new(
            poller: Arc<Poller>,
            listener: TcpListener,
            service: SpeQuloS,
            observer: Option<RequestObserver>,
            durable: Option<DurableState>,
            config: ServerConfig,
        ) -> Reactor {
            Reactor {
                poller,
                listener,
                conns: Vec::new(),
                free: Vec::new(),
                service,
                observer,
                durable,
                max_frame: config.max_frame_bytes,
                highwater: config.write_highwater.max(1),
            }
        }

        /// The event loop; returns the service on shutdown.
        pub(super) fn run(mut self, shutdown: &AtomicBool) -> SpeQuloS {
            let mut events: Vec<Event> = Vec::new();
            while !shutdown.load(Ordering::Acquire) {
                events.clear();
                // The timeout is a belt-and-braces re-check of the
                // shutdown flag; `notify` is the real wakeup.
                if self
                    .poller
                    .wait(&mut events, Some(Duration::from_millis(500)))
                    .is_err()
                {
                    break;
                }
                for event in events.drain(..) {
                    if event.key == LISTENER_KEY {
                        self.accept_burst();
                    } else {
                        self.drive(event.key - 1, event.readable, event.writable);
                    }
                }
            }
            self.service
        }

        /// Accepts until the listener runs dry, then re-arms it.
        fn accept_burst(&mut self) {
            loop {
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                };
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Replies are single small frames; Nagle only adds latency.
                let _ = stream.set_nodelay(true);
                let slot = match self.free.pop() {
                    Some(slot) => slot,
                    None => {
                        self.conns.push(None);
                        self.conns.len() - 1
                    }
                };
                if self.poller.add(&stream, Event::readable(slot + 1)).is_err() {
                    // Out of poller budget: refuse by dropping the socket.
                    self.free.push(slot);
                    continue;
                }
                self.conns[slot] = Some(Conn {
                    stream,
                    phase: Phase::AwaitHello,
                    rbuf: Vec::new(),
                    rpos: 0,
                    wbuf: Vec::new(),
                    wpos: 0,
                    close_after_flush: false,
                    read_closed: false,
                });
            }
            let _ = self
                .poller
                .modify(&self.listener, Event::readable(LISTENER_KEY));
        }

        /// One connection's turn: pull bytes, serve complete frames,
        /// push replies, re-arm or close.
        fn drive(&mut self, slot: usize, readable: bool, writable: bool) {
            // Take the connection out of its slot so serving requests can
            // borrow the service mutably alongside it.
            let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
                return;
            };
            let verdict = self.step(&mut conn, readable, writable);
            match verdict {
                Verdict::Close => {
                    let _ = self.poller.delete(&conn.stream);
                    self.free.push(slot);
                }
                Verdict::Keep => {
                    // Re-arm (oneshot poller): read unless backpressured
                    // or closing, write only while replies are queued.
                    let interest = Event {
                        key: slot + 1,
                        readable: !conn.close_after_flush
                            && !conn.read_closed
                            && conn.pending_write() < self.highwater,
                        writable: conn.pending_write() > 0,
                    };
                    if self.poller.modify(&conn.stream, interest).is_err() {
                        self.free.push(slot);
                        return;
                    }
                    self.conns[slot] = Some(conn);
                }
            }
        }

        fn step(&mut self, conn: &mut Conn, readable: bool, writable: bool) -> Verdict {
            if readable && !conn.close_after_flush && !conn.read_closed {
                match self.fill(conn) {
                    Ok(()) => {}
                    Err(()) => return Verdict::Close,
                }
            }
            if let Err(()) = self.serve_buffered(conn) {
                return Verdict::Close;
            }
            if (writable || conn.pending_write() > 0) && self.flush(conn).is_err() {
                return Verdict::Close;
            }
            // Flushing may have drained below the high-water mark:
            // consume requests that were parked behind backpressure.
            if let Err(()) = self.serve_buffered(conn) {
                return Verdict::Close;
            }
            if conn.close_after_flush && conn.pending_write() == 0 {
                return Verdict::Close;
            }
            // Half-close drain complete: every decodable request served
            // (serve_buffered ran to exhaustion) and every reply flushed.
            if conn.read_closed && conn.pending_write() == 0 {
                return Verdict::Close;
            }
            Verdict::Keep
        }

        /// Reads the socket dry (or until the frame-size bound says the
        /// peer is misbehaving). `Err(())` = peer gone.
        fn fill(&mut self, conn: &mut Conn) -> Result<(), ()> {
            let mut chunk = [0u8; 16 * 1024];
            loop {
                // A well-formed frame fits in max_frame + header slack; a
                // buffer beyond that holds garbage the decoder will
                // reject — stop amplifying it.
                if conn.rbuf.len() - conn.rpos > self.max_frame + 64 {
                    return Ok(());
                }
                if conn.pending_write() >= self.highwater {
                    return Ok(()); // backpressured: let the kernel queue it
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // EOF: the peer is done writing, but requests may
                        // still be buffered and replies unflushed — drain
                        // before closing (half-close, §1).
                        conn.read_closed = true;
                        return Ok(());
                    }
                    Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Err(()),
                }
            }
        }

        /// Decodes and serves every complete frame buffered, stopping at
        /// the backpressure bound. `Err(())` = unrecoverable stream
        /// (framing violation, hello garbage): drop the connection.
        fn serve_buffered(&mut self, conn: &mut Conn) -> Result<(), ()> {
            loop {
                if conn.pending_write() >= self.highwater || conn.close_after_flush {
                    break;
                }
                let buf = &conn.rbuf[conn.rpos..];
                match conn.phase {
                    Phase::AwaitHello => match frame::decode_hello(buf) {
                        Ok(None) => break,
                        Ok(Some((HelloOutcome::Legacy, consumed))) => {
                            conn.rpos += consumed;
                            conn.phase = Phase::Ready(Codec::Json);
                        }
                        Ok(Some((HelloOutcome::Hello(codec), consumed))) => {
                            conn.rpos += consumed;
                            conn.wbuf
                                .extend_from_slice(frame::hello_ack_line(codec).as_bytes());
                            conn.phase = Phase::Ready(codec);
                        }
                        Err(FrameError::BadHello(reason)) => {
                            // A recognizable-but-wrong hello gets a
                            // refusal line before the close (§2.2);
                            // arbitrary garbage gets nothing.
                            if buf.first() == Some(&b'S') {
                                conn.wbuf
                                    .extend_from_slice(frame::hello_err_line(&reason).as_bytes());
                                conn.close_after_flush = true;
                                break;
                            }
                            self.compact(conn);
                            return Err(());
                        }
                        Err(_) => {
                            self.compact(conn);
                            return Err(());
                        }
                    },
                    Phase::Ready(Codec::Json) => {
                        match frame::decode_json_frame(buf, self.max_frame) {
                            Ok(None) => break,
                            Ok(Some((payload, consumed))) => {
                                conn.rpos += consumed;
                                let reply = self.serve_json(&payload);
                                frame::write_frame_vec(&mut conn.wbuf, &reply.to_json());
                            }
                            Err(_) => {
                                // Framing violation: reader and writer
                                // have lost agreement — no resync.
                                self.compact(conn);
                                return Err(());
                            }
                        }
                    }
                    Phase::Ready(Codec::Binary) => {
                        match frame::decode_binary_frame(buf, self.max_frame) {
                            Ok(None) => break,
                            Ok(Some((payload, consumed))) => {
                                conn.rpos += consumed;
                                let reply = self.serve_binary(&payload);
                                frame::write_binary_frame_vec(
                                    &mut conn.wbuf,
                                    &binary::encode_response(&reply),
                                );
                            }
                            Err(_) => {
                                self.compact(conn);
                                return Err(());
                            }
                        }
                    }
                }
            }
            self.compact(conn);
            Ok(())
        }

        /// Drops the consumed front of the read buffer — once per event,
        /// so serving N buffered frames costs one memmove, not N.
        fn compact(&self, conn: &mut Conn) {
            if conn.rpos > 0 {
                conn.rbuf.drain(..conn.rpos);
                conn.rpos = 0;
            }
        }

        fn serve_json(&mut self, payload: &str) -> ResponseEnvelope {
            match RequestEnvelope::from_json(payload) {
                Ok(envelope) => self.serve(envelope),
                // A decodable frame with a bad payload is answered, not
                // dropped: the stream itself is still healthy (§7).
                Err(e) => ResponseEnvelope {
                    id: peek_id(payload).unwrap_or(0),
                    response: Response::Error(RequestError::Invalid(format!("bad envelope: {e}"))),
                },
            }
        }

        fn serve_binary(&mut self, payload: &[u8]) -> ResponseEnvelope {
            match binary::decode_request(payload) {
                Ok(envelope) => self.serve(envelope),
                Err(e) => ResponseEnvelope {
                    id: binary::peek_id(payload).unwrap_or(0),
                    response: Response::Error(RequestError::Invalid(format!("bad envelope: {e}"))),
                },
            }
        }

        /// The request path: append-before-dispatch, handle, snapshot
        /// bookkeeping — inline, exactly what the threaded design's
        /// dispatch loop did per mailbox job.
        fn serve(&mut self, envelope: RequestEnvelope) -> ResponseEnvelope {
            let RequestEnvelope { id, at, request } = envelope;
            // Write-ahead: the record must be durable before the state
            // changes. A batch is one record — atomic in the log exactly
            // as it is atomic in dispatch.
            if let Some(d) = self.durable.as_mut() {
                if let Err(e) = d.wal.append(at, &request) {
                    let response = Response::Error(RequestError::Transport(format!(
                        "write-ahead log append failed: {e}"
                    )));
                    return ResponseEnvelope { id, response }; // not durable ⇒ not dispatched
                }
            }
            let response = match self.observer.as_mut() {
                None => self.service.handle(request, at),
                Some(observe) => {
                    let kind = request.kind();
                    let start = std::time::Instant::now();
                    let response = self.service.handle(request, at);
                    observe(kind, start.elapsed());
                    response
                }
            };
            if let Some(d) = self.durable.as_mut() {
                d.since_snapshot += 1;
                if d.snapshot_every > 0 && d.since_snapshot >= d.snapshot_every {
                    // The service now reflects exactly the appended
                    // records, so the snapshot's `applied` count is
                    // truthful. Failure is non-fatal: the log alone
                    // recovers exactly; retry after the next period
                    // rather than on every request.
                    let _ = d.wal.snapshot(&self.service);
                    d.since_snapshot = 0;
                }
            }
            ResponseEnvelope { id, response }
        }

        /// Writes until the kernel stops accepting or the buffer drains.
        fn flush(&self, conn: &mut Conn) -> Result<(), ()> {
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => return Err(()),
                    Ok(n) => conn.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Err(()),
                }
            }
            conn.wbuf.clear();
            conn.wpos = 0;
            Ok(())
        }
    }
}

mod threaded {
    //! The retired thread-per-connection deployment, kept verbatim as
    //! the baseline [`Server::spawn_threaded`] benchmarks the reactor
    //! against. Legacy JSON only (no hello); see the module docs of
    //! [`super`] for the reactor that replaced it.

    use super::*;
    use crate::frame::{read_frame, write_frame};
    use std::io::{BufReader, BufWriter};
    use std::sync::mpsc::{self, SyncSender};
    use std::sync::Mutex;

    struct Job {
        envelope: RequestEnvelope,
        reply: SyncSender<ResponseEnvelope>,
    }

    type SessionRegistry = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

    pub(super) struct Parts {
        shutdown: Arc<AtomicBool>,
        sessions: SessionRegistry,
        accept: JoinHandle<()>,
        dispatch: JoinHandle<SpeQuloS>,
        mailbox: SyncSender<Job>,
    }

    impl Parts {
        pub(super) fn stop(self, addr: SocketAddr) -> SpeQuloS {
            let Parts {
                shutdown,
                sessions,
                accept,
                dispatch,
                mailbox,
            } = self;
            shutdown.store(true, Ordering::Release);
            // Wake the blocking `accept` so it observes the flag.
            let _ = TcpStream::connect(addr);
            let _ = accept.join();
            let drained: Vec<(JoinHandle<()>, TcpStream)> = {
                let mut guard = sessions
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard.drain(..).collect()
            };
            for (handle, stream) in drained {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                let _ = handle.join();
            }
            // All mailbox senders are gone once this drops, so the
            // dispatch loop drains what is queued and returns the service.
            drop(mailbox);
            dispatch
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
        }
    }

    pub(super) fn spawn(
        service: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<(SocketAddr, Parts)> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sessions: SessionRegistry = Arc::new(Mutex::new(Vec::new()));
        let (mailbox, jobs) = mpsc::sync_channel::<Job>(config.mailbox_depth.max(1));

        let dispatch = thread::spawn(move || {
            let mut service = service;
            while let Ok(job) = jobs.recv() {
                let RequestEnvelope { id, at, request } = job.envelope;
                let response = service.handle(request, at);
                let _ = job.reply.send(ResponseEnvelope { id, response });
            }
            service
        });

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let sessions = Arc::clone(&sessions);
            let mailbox = mailbox.clone();
            let max_frame = config.max_frame_bytes;
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let Ok(registered) = stream.try_clone() else {
                        continue;
                    };
                    let mailbox = mailbox.clone();
                    let handle = thread::spawn(move || session(stream, mailbox, max_frame));
                    // Poison means a session thread panicked mid-push;
                    // the registry Vec is still structurally sound.
                    let mut registry = sessions
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    registry.retain(|(h, _)| !h.is_finished());
                    registry.push((handle, registered));
                }
            })
        };

        Ok((
            addr,
            Parts {
                shutdown,
                sessions,
                accept,
                dispatch,
                mailbox,
            },
        ))
    }

    fn session(stream: TcpStream, mailbox: SyncSender<Job>, max_frame: usize) {
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        let (reply, replies) = mpsc::sync_channel::<ResponseEnvelope>(1);

        loop {
            let payload = match read_frame(&mut reader, max_frame) {
                Ok(Some(payload)) => payload,
                Ok(None) | Err(_) => return,
            };
            let outcome = match RequestEnvelope::from_json(&payload) {
                Ok(envelope) => {
                    if mailbox
                        .send(Job {
                            envelope,
                            reply: reply.clone(),
                        })
                        .is_err()
                    {
                        return;
                    }
                    match replies.recv() {
                        Ok(out) => out,
                        Err(_) => return,
                    }
                }
                Err(e) => ResponseEnvelope {
                    id: peek_id(&payload).unwrap_or(0),
                    response: Response::Error(RequestError::Invalid(format!("bad envelope: {e}"))),
                },
            };
            if write_frame(&mut writer, &outcome.to_json()).is_err() {
                return;
            }
            if io::Write::flush(&mut writer).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteService;
    use simcore::SimTime;
    use spequlos::protocol::Request;
    use spequlos::UserId;
    use std::io::{BufRead, BufReader, BufWriter};
    use std::sync::Mutex;

    #[test]
    fn serves_one_client_and_returns_the_state() {
        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        let user = UserId(3);
        let r = remote.handle(
            Request::Deposit {
                user,
                credits: 250.0,
            },
            SimTime::ZERO,
        );
        assert_eq!(
            r,
            Response::Deposited {
                user,
                balance: 250.0
            }
        );
        let Response::Registered { bot } = remote.handle(
            Request::RegisterQos {
                user,
                env: "env".into(),
                size: 10,
            },
            SimTime::ZERO,
        ) else {
            panic!("registration over the wire");
        };
        drop(remote);
        let service = handle.into_service();
        assert_eq!(service.credits.balance(user), 250.0);
        assert_eq!(service.user_of(bot), Some(user));
        assert_eq!(service.log().len(), 1, "one RegisterQos logged");
    }

    #[test]
    fn serves_concurrent_clients_without_losing_requests() {
        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let addr = handle.addr();
        let clients: Vec<_> = (0..8u64)
            .map(|i| {
                thread::spawn(move || {
                    let mut remote = RemoteService::connect(addr).expect("connect");
                    for k in 0..25 {
                        let r = remote.handle(
                            Request::Deposit {
                                user: UserId(i),
                                credits: 1.0,
                            },
                            SimTime::from_secs(k),
                        );
                        assert!(matches!(r, Response::Deposited { .. }), "{r:?}");
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client");
        }
        let service = handle.into_service();
        for i in 0..8u64 {
            assert_eq!(service.credits.balance(UserId(i)), 25.0, "user {i}");
        }
    }

    #[test]
    fn both_codecs_drive_the_same_service() {
        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let mut json = RemoteService::connect_with(handle.addr(), Codec::Json).expect("json");
        let mut bin = RemoteService::connect_with(handle.addr(), Codec::Binary).expect("bin");
        assert_eq!(json.codec(), Codec::Json);
        assert_eq!(bin.codec(), Codec::Binary);
        let r = json.handle(
            Request::Deposit {
                user: UserId(1),
                credits: 10.0,
            },
            SimTime::ZERO,
        );
        assert!(matches!(r, Response::Deposited { balance, .. } if balance == 10.0));
        let r = bin.handle(
            Request::Deposit {
                user: UserId(1),
                credits: 5.0,
            },
            SimTime::ZERO,
        );
        assert!(
            matches!(r, Response::Deposited { balance, .. } if balance == 15.0),
            "binary connection sees state built over the JSON one: {r:?}"
        );
        drop(json);
        drop(bin);
        let service = handle.into_service();
        assert_eq!(service.credits.balance(UserId(1)), 15.0);
    }

    #[test]
    fn a_garbage_hello_is_refused_with_an_err_line() {
        use std::io::Write;

        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        writer.write_all(b"SPQ/1 gzip\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).expect("refusal line");
        assert!(
            line.starts_with("SPQ/1 err"),
            "unknown codec gets a refusal, got {line:?}"
        );
        // …after which the connection closes.
        assert_eq!(reader.read_line(&mut line).expect("eof"), 0);
    }

    #[test]
    fn tiny_mailbox_backpressures_instead_of_failing() {
        let config = ServerConfig {
            mailbox_depth: 1,
            ..ServerConfig::default()
        };
        let handle = Server::spawn(SpeQuloS::new(), "127.0.0.1:0", config).expect("bind loopback");
        let addr = handle.addr();
        let clients: Vec<_> = (0..4u64)
            .map(|i| {
                thread::spawn(move || {
                    let mut remote = RemoteService::connect(addr).expect("connect");
                    for _ in 0..50 {
                        let r = remote.handle(
                            Request::Deposit {
                                user: UserId(i),
                                credits: 2.0,
                            },
                            SimTime::ZERO,
                        );
                        assert!(matches!(r, Response::Deposited { .. }));
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client");
        }
        let service = handle.into_service();
        for i in 0..4u64 {
            assert_eq!(service.credits.balance(UserId(i)), 100.0);
        }
    }

    #[test]
    fn a_tiny_write_highwater_still_serves_a_pipelined_flood() {
        // Force the byte-denominated backpressure path (PROTOCOL.md §9):
        // with a 64-byte high-water mark, a client that pipelines 200
        // requests before reading anything must still get every reply.
        use std::io::Write;

        let config = ServerConfig {
            write_highwater: 64,
            ..ServerConfig::default()
        };
        let handle = Server::spawn(SpeQuloS::new(), "127.0.0.1:0", config).expect("bind loopback");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        const N: u64 = 200;
        for id in 0..N {
            let env = RequestEnvelope {
                id,
                at: SimTime::ZERO,
                request: Request::Deposit {
                    user: UserId(1),
                    credits: 1.0,
                },
            };
            frame::write_frame(&mut writer, &env.to_json()).unwrap();
        }
        writer.flush().unwrap();
        for id in 0..N {
            let reply = frame::read_frame(&mut reader, MAX_FRAME_BYTES)
                .expect("read")
                .expect("reply");
            let envelope = ResponseEnvelope::from_json(&reply).expect("decodes");
            assert_eq!(envelope.id, id, "replies arrive in order");
        }
        drop(reader);
        drop(writer);
        let service = handle.into_service();
        assert_eq!(service.credits.balance(UserId(1)), N as f64);
    }

    #[test]
    fn malformed_payloads_get_error_replies_and_the_session_survives() {
        use std::io::Write;

        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);

        // A well-framed but non-envelope payload: the server answers with
        // a typed error (echoing the id it could recover) and keeps the
        // connection open.
        frame::write_frame(&mut writer, r#"{"id":7.0,"wat":true}"#).unwrap();
        writer.flush().unwrap();
        let reply = frame::read_frame(&mut reader, MAX_FRAME_BYTES)
            .expect("read")
            .expect("reply");
        let envelope = ResponseEnvelope::from_json(&reply).expect("decodes");
        assert_eq!(envelope.id, 7);
        assert!(matches!(
            envelope.response,
            Response::Error(RequestError::Invalid(_))
        ));

        // …and a valid request on the same connection still works.
        let env = RequestEnvelope {
            id: 8,
            at: SimTime::ZERO,
            request: Request::Deposit {
                user: UserId(1),
                credits: 5.0,
            },
        };
        frame::write_frame(&mut writer, &env.to_json()).unwrap();
        writer.flush().unwrap();
        let reply = frame::read_frame(&mut reader, MAX_FRAME_BYTES)
            .expect("read")
            .expect("reply");
        let envelope = ResponseEnvelope::from_json(&reply).expect("decodes");
        assert_eq!(envelope.id, 8);
        assert!(matches!(envelope.response, Response::Deposited { .. }));
    }

    #[test]
    fn a_broken_frame_drops_only_that_connection() {
        use std::io::Write;

        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");

        // Feed bytes that violate the framing itself.
        let mut vandal = TcpStream::connect(handle.addr()).expect("connect");
        vandal.write_all(b"not a frame at all\n").unwrap();
        vandal.flush().unwrap();

        // The server stays up for everyone else.
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        let r = remote.handle(
            Request::Deposit {
                user: UserId(1),
                credits: 1.0,
            },
            SimTime::ZERO,
        );
        assert!(matches!(r, Response::Deposited { .. }));
    }

    #[test]
    fn observed_server_times_every_request() {
        let samples = Arc::new(Mutex::new(Vec::<(&'static str, std::time::Duration)>::new()));
        let sink = Arc::clone(&samples);
        let handle = Server::spawn_observed(
            SpeQuloS::new(),
            "127.0.0.1:0",
            ServerConfig::default(),
            Box::new(move |kind, took| sink.lock().expect("sink").push((kind, took))),
        )
        .expect("bind loopback");
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        for k in 0..5u64 {
            let r = remote.handle(
                Request::Deposit {
                    user: UserId(1),
                    credits: 1.0,
                },
                SimTime::from_secs(k),
            );
            assert!(matches!(r, Response::Deposited { .. }));
        }
        // A batch counts as one served request, tagged "batch".
        let rs = remote.handle_batch(
            vec![
                Request::Predict {
                    bot: botwork::BotId(0),
                },
                Request::Predict {
                    bot: botwork::BotId(1),
                },
            ],
            SimTime::ZERO,
        );
        assert_eq!(rs.len(), 2);
        drop(remote);
        drop(handle);
        let samples = samples.lock().expect("samples");
        assert_eq!(samples.len(), 6, "five deposits + one batch");
        assert_eq!(samples.iter().filter(|(k, _)| *k == "deposit").count(), 5);
        assert_eq!(samples.iter().filter(|(k, _)| *k == "batch").count(), 1);
    }

    #[test]
    fn the_threaded_baseline_still_serves_legacy_clients() {
        let handle =
            Server::spawn_threaded(SpeQuloS::new(), "127.0.0.1:0", ServerConfig::default())
                .expect("bind loopback");
        let mut remote = RemoteService::connect_legacy(handle.addr()).expect("connect");
        let r = remote.handle(
            Request::Deposit {
                user: UserId(2),
                credits: 7.0,
            },
            SimTime::ZERO,
        );
        assert!(matches!(r, Response::Deposited { .. }));
        drop(remote);
        let service = handle.into_service();
        assert_eq!(service.credits.balance(UserId(2)), 7.0);
    }

    #[test]
    fn dropping_the_handle_shuts_the_server_down() {
        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let addr = handle.addr();
        drop(handle);
        // The listener is gone: new connections are refused (or, at
        // worst, accepted by nothing and immediately closed).
        let outcome = TcpStream::connect(addr);
        if let Ok(stream) = outcome {
            let mut reader = BufReader::new(stream);
            assert!(matches!(
                crate::frame::read_frame(&mut reader, MAX_FRAME_BYTES),
                Ok(None) | Err(_)
            ));
        }
    }
}
