//! The multi-client protocol server.
//!
//! One [`Server`] owns one [`SpeQuloS`] instance behind a *mailbox*: a
//! bounded channel feeding a single dispatch thread, the only thread that
//! ever touches the service. Each accepted connection gets a session
//! thread that reads frames, decodes [`RequestEnvelope`]s, forwards them
//! to the mailbox and writes the replies back — so the service itself
//! needs no locking, requests from all connections serialize in arrival
//! order (exactly like the in-process call sequence they replace), and a
//! flood of clients backpressures naturally: when the mailbox is full,
//! session threads block, their sockets stop being read, and TCP flow
//! control pushes back to the senders.
//!
//! Ordering guarantees: FIFO per connection (a session answers each frame
//! before reading the next, so pipelined frames queue in the kernel
//! buffer and are served in order), global order = mailbox arrival order.
//! A client that needs many requests served back-to-back atomically sends
//! one `Request::Batch` frame — the dispatch loop serves the whole batch
//! before the next mailbox job.
//!
//! Shutdown recovers the service: [`ServerHandle::into_service`] stops
//! the listener, disconnects the remaining sessions, drains the mailbox
//! and returns the `SpeQuloS` with all the state the request stream built
//! — which is how the harness pins remote runs bit-identical to
//! in-process ones.

use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
use crate::wire::{peek_id, RequestEnvelope, ResponseEnvelope};
use spequlos::protocol::{RequestError, Response, SpqService};
use spequlos::wal::{FsyncPolicy, RecoveryReport, WalError, WalStore};
use spequlos::SpeQuloS;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Server tuning knobs; [`ServerConfig::default`] suits tests and
/// loopback experiment runs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Mailbox depth: how many decoded requests may wait for the dispatch
    /// loop before session threads block (the backpressure bound).
    pub mailbox_depth: usize,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mailbox_depth: 64,
            max_frame_bytes: MAX_FRAME_BYTES,
        }
    }
}

/// Durability knobs for [`Server::spawn_durable`].
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the write-ahead log and snapshots (created if
    /// missing; reuse the same directory across restarts to recover).
    pub dir: PathBuf,
    /// When appends reach stable storage. [`FsyncPolicy::Always`] is the
    /// only setting under which an acknowledged request survives a crash.
    pub fsync: FsyncPolicy,
    /// Take a full-state snapshot every this many appended requests
    /// (0 disables snapshots; recovery then replays the whole log).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durable defaults for `dir`: fsync on every append, snapshot every
    /// 4096 requests.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 4096,
        }
    }
}

/// Why a durable server failed to start.
#[derive(Debug)]
pub enum DurableError {
    /// The write-ahead log could not be opened or recovery failed
    /// (corruption mid-log, snapshot/template configuration mismatch).
    Wal(WalError),
    /// Binding the listener failed.
    Io(io::Error),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "durable server: {e}"),
            DurableError::Io(e) => write!(f, "durable server: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// Runtime durability state owned by the dispatch loop.
struct DurableState {
    wal: WalStore,
    snapshot_every: u64,
    since_snapshot: u64,
}

/// One queued request: where it came from is irrelevant to the dispatch
/// loop; `reply` routes the response back to the owning session.
struct Job {
    envelope: RequestEnvelope,
    reply: SyncSender<ResponseEnvelope>,
}

/// Live-session registry: each entry pairs the session thread's handle
/// with a clone of its stream, so shutdown can force-disconnect and then
/// join.
type SessionRegistry = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// Per-request timing observer for [`Server::spawn_observed`]: called by
/// the dispatch loop after each served request with the request's wire
/// tag ([`spequlos::protocol::Request::kind`]; batches report as
/// `"batch"`) and the wall-clock time `SpqService::handle` took —
/// service time only, excluding framing, queueing and socket I/O.
///
/// The observer runs on the dispatch thread, between requests: keep it
/// cheap (a histogram record, a counter bump), because its cost is
/// serialized into the request path exactly like the service itself.
pub type RequestObserver = Box<dyn FnMut(&'static str, std::time::Duration) + Send>;

/// Factory for protocol servers; see the [module docs](self).
pub struct Server;

impl Server {
    /// Binds `addr` and serves `service` until the returned handle shuts
    /// down. `addr` may be anything `ToSocketAddrs` accepts —
    /// `"127.0.0.1:0"` picks a free loopback port (see
    /// [`ServerHandle::addr`]).
    pub fn spawn(
        service: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        Self::spawn_inner(service, addr, config, None, None)
    }

    /// Binds `addr` and serves a *durable* service: every request is
    /// appended to the write-ahead log in `durability.dir` — and, under
    /// [`FsyncPolicy::Always`], fsynced — *before* it is dispatched, so
    /// an acknowledged request survives a crash of the whole process.
    ///
    /// If the directory already holds state from a previous run, it is
    /// recovered first — newest usable snapshot plus log-tail replay
    /// through the ordinary request path — and `template` must be a
    /// service assembled with the same builder configuration as the one
    /// that wrote it. The returned [`RecoveryReport`] says where the
    /// state came from.
    ///
    /// A failed append is answered with a typed
    /// [`RequestError::Transport`] error and the request is *not*
    /// dispatched: the client knows durability was not achieved, and the
    /// on-disk log never lags the in-memory state. Snapshot failures are
    /// non-fatal (the log alone recovers exactly); they only cost
    /// recovery time.
    pub fn spawn_durable(
        template: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> Result<(ServerHandle, RecoveryReport), DurableError> {
        let (wal, recovery) = WalStore::open(&durability.dir, durability.fsync)?;
        let (service, report) = recovery.recover(template)?;
        let durable = DurableState {
            wal,
            snapshot_every: durability.snapshot_every,
            since_snapshot: 0,
        };
        let handle = Self::spawn_inner(service, addr, config, None, Some(durable))?;
        Ok((handle, report))
    }

    /// [`Server::spawn`] with a per-request timing hook: `observer` sees
    /// every request the dispatch loop serves (kind tag + service time).
    /// This is how the load generator's `repro_load` separates *service*
    /// time from *sojourn* time — under open-loop overload the client-side
    /// latency explodes while the per-request service time stays flat,
    /// which is the signature of queueing collapse rather than a slow
    /// handler. Timing adds two `Instant::now` calls per request; servers
    /// spawned without an observer skip them entirely.
    pub fn spawn_observed(
        service: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        observer: RequestObserver,
    ) -> io::Result<ServerHandle> {
        Self::spawn_inner(service, addr, config, Some(observer), None)
    }

    fn spawn_inner(
        service: SpeQuloS,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        observer: Option<RequestObserver>,
        durable: Option<DurableState>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sessions: SessionRegistry = Arc::new(Mutex::new(Vec::new()));

        let (mailbox, jobs) = mpsc::sync_channel::<Job>(config.mailbox_depth.max(1));

        // The dispatch loop: sole owner of the service. Exits — returning
        // the service — once every mailbox sender (accept loop + sessions)
        // is gone.
        let dispatch = thread::spawn(move || {
            let mut service = service;
            let mut observer = observer;
            let mut durable = durable;
            while let Ok(job) = jobs.recv() {
                let RequestEnvelope { id, at, request } = job.envelope;
                // Write-ahead: the record must be durable before the
                // state changes. A batch is one record — atomic in the
                // log exactly as it is atomic in dispatch.
                if let Some(d) = durable.as_mut() {
                    if let Err(e) = d.wal.append(at, &request) {
                        let response = Response::Error(RequestError::Transport(format!(
                            "write-ahead log append failed: {e}"
                        )));
                        let _ = job.reply.send(ResponseEnvelope { id, response });
                        continue; // not durable ⇒ not dispatched
                    }
                }
                let response = match observer.as_mut() {
                    None => service.handle(request, at),
                    Some(observe) => {
                        let kind = request.kind();
                        let start = std::time::Instant::now();
                        let response = service.handle(request, at);
                        observe(kind, start.elapsed());
                        response
                    }
                };
                if let Some(d) = durable.as_mut() {
                    d.since_snapshot += 1;
                    if d.snapshot_every > 0 && d.since_snapshot >= d.snapshot_every {
                        // The service now reflects exactly the appended
                        // records, so the snapshot's `applied` count is
                        // truthful. Failure is non-fatal: the log alone
                        // recovers exactly; retry after the next period
                        // rather than on every request.
                        let _ = d.wal.snapshot(&service);
                        d.since_snapshot = 0;
                    }
                }
                // A send error means the session died mid-request (client
                // hung up); the state change stands, the reply is moot.
                let _ = job.reply.send(ResponseEnvelope { id, response });
            }
            service
        });

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let sessions = Arc::clone(&sessions);
            let mailbox = mailbox.clone();
            let max_frame = config.max_frame_bytes;
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let Ok(registered) = stream.try_clone() else {
                        continue;
                    };
                    let mailbox = mailbox.clone();
                    let handle = thread::spawn(move || session(stream, mailbox, max_frame));
                    let mut registry = sessions.lock().expect("registry");
                    // Prune sessions whose clients already hung up, so a
                    // long-lived server under connection churn does not
                    // accumulate one duplicated fd per past connection
                    // (dropping a finished handle just detaches it).
                    registry.retain(|(h, _)| !h.is_finished());
                    registry.push((handle, registered));
                }
            })
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            sessions,
            accept: Some(accept),
            dispatch: Some(dispatch),
            mailbox: Some(mailbox),
        })
    }

    /// [`Server::spawn`] on `127.0.0.1:0` with the default configuration —
    /// the loopback deployment the harness's `Transport::Loopback` mode
    /// and the integration tests use.
    pub fn spawn_loopback(service: SpeQuloS) -> io::Result<ServerHandle> {
        Server::spawn(service, "127.0.0.1:0", ServerConfig::default())
    }
}

/// A running server. Dropping the handle shuts the server down (and
/// discards the service); call [`ServerHandle::into_service`] to shut
/// down *and* recover the service state.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    sessions: SessionRegistry,
    accept: Option<JoinHandle<()>>,
    dispatch: Option<JoinHandle<SpeQuloS>>,
    mailbox: Option<SyncSender<Job>>,
}

impl ServerHandle {
    /// The bound address — with `"127.0.0.1:0"` this carries the actual
    /// port clients must connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and returns the service with every state change
    /// the request stream produced. In-flight requests finish first;
    /// connections still open are dropped.
    pub fn into_service(mut self) -> SpeQuloS {
        self.stop().expect("first stop returns the service")
    }

    /// Idempotent teardown; returns the service on the first call.
    fn stop(&mut self) -> Option<SpeQuloS> {
        let dispatch = self.dispatch.take()?;
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking `accept` so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Disconnect lingering sessions; their threads exit on the next
        // read/write against the closed socket.
        let drained: Vec<(JoinHandle<()>, TcpStream)> = {
            let mut guard = self.sessions.lock().expect("registry");
            guard.drain(..).collect()
        };
        for (handle, stream) in drained {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
        // All mailbox senders are gone once this template drops, so the
        // dispatch loop drains what is queued and returns the service.
        self.mailbox = None;
        Some(dispatch.join().expect("dispatch loop never panics"))
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// One connection: read frame → mailbox → reply → write frame, until the
/// client hangs up or the stream desynchronizes.
fn session(stream: TcpStream, mailbox: SyncSender<Job>, max_frame: usize) {
    // Loopback exchanges are single small frames; Nagle only adds latency.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let (reply, replies) = mpsc::sync_channel::<ResponseEnvelope>(1);

    loop {
        let payload = match read_frame(&mut reader, max_frame) {
            Ok(Some(payload)) => payload,
            // Clean disconnect, or a framing violation we cannot resync
            // from (lengths out of agreement): drop the connection. A
            // *decodable* frame with a bad payload is answered below
            // instead — the stream itself is still healthy.
            Ok(None) | Err(_) => return,
        };
        let outcome = match RequestEnvelope::from_json(&payload) {
            Ok(envelope) => {
                if mailbox
                    .send(Job {
                        envelope,
                        reply: reply.clone(),
                    })
                    .is_err()
                {
                    return; // server shutting down
                }
                match replies.recv() {
                    Ok(out) => out,
                    Err(_) => return,
                }
            }
            Err(e) => ResponseEnvelope {
                id: peek_id(&payload).unwrap_or(0),
                response: Response::Error(RequestError::Invalid(format!("bad envelope: {e}"))),
            },
        };
        if write_frame(&mut writer, &outcome.to_json()).is_err() {
            return;
        }
        if io::Write::flush(&mut writer).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RemoteService;
    use simcore::SimTime;
    use spequlos::protocol::Request;
    use spequlos::UserId;

    #[test]
    fn serves_one_client_and_returns_the_state() {
        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        let user = UserId(3);
        let r = remote.handle(
            Request::Deposit {
                user,
                credits: 250.0,
            },
            SimTime::ZERO,
        );
        assert_eq!(
            r,
            Response::Deposited {
                user,
                balance: 250.0
            }
        );
        let Response::Registered { bot } = remote.handle(
            Request::RegisterQos {
                user,
                env: "env".into(),
                size: 10,
            },
            SimTime::ZERO,
        ) else {
            panic!("registration over the wire");
        };
        drop(remote);
        let service = handle.into_service();
        assert_eq!(service.credits.balance(user), 250.0);
        assert_eq!(service.user_of(bot), Some(user));
        assert_eq!(service.log().len(), 1, "one RegisterQos logged");
    }

    #[test]
    fn serves_concurrent_clients_without_losing_requests() {
        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let addr = handle.addr();
        let clients: Vec<_> = (0..8u64)
            .map(|i| {
                thread::spawn(move || {
                    let mut remote = RemoteService::connect(addr).expect("connect");
                    for k in 0..25 {
                        let r = remote.handle(
                            Request::Deposit {
                                user: UserId(i),
                                credits: 1.0,
                            },
                            SimTime::from_secs(k),
                        );
                        assert!(matches!(r, Response::Deposited { .. }), "{r:?}");
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client");
        }
        let service = handle.into_service();
        for i in 0..8u64 {
            assert_eq!(service.credits.balance(UserId(i)), 25.0, "user {i}");
        }
    }

    #[test]
    fn tiny_mailbox_backpressures_instead_of_failing() {
        let config = ServerConfig {
            mailbox_depth: 1,
            ..ServerConfig::default()
        };
        let handle = Server::spawn(SpeQuloS::new(), "127.0.0.1:0", config).expect("bind loopback");
        let addr = handle.addr();
        let clients: Vec<_> = (0..4u64)
            .map(|i| {
                thread::spawn(move || {
                    let mut remote = RemoteService::connect(addr).expect("connect");
                    for _ in 0..50 {
                        let r = remote.handle(
                            Request::Deposit {
                                user: UserId(i),
                                credits: 2.0,
                            },
                            SimTime::ZERO,
                        );
                        assert!(matches!(r, Response::Deposited { .. }));
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client");
        }
        let service = handle.into_service();
        for i in 0..4u64 {
            assert_eq!(service.credits.balance(UserId(i)), 100.0);
        }
    }

    #[test]
    fn malformed_payloads_get_error_replies_and_the_session_survives() {
        use crate::frame;
        use std::io::Write;

        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);

        // A well-framed but non-envelope payload: the server answers with
        // a typed error (echoing the id it could recover) and keeps the
        // connection open.
        frame::write_frame(&mut writer, r#"{"id":7.0,"wat":true}"#).unwrap();
        writer.flush().unwrap();
        let reply = frame::read_frame(&mut reader, MAX_FRAME_BYTES)
            .expect("read")
            .expect("reply");
        let envelope = ResponseEnvelope::from_json(&reply).expect("decodes");
        assert_eq!(envelope.id, 7);
        assert!(matches!(
            envelope.response,
            Response::Error(RequestError::Invalid(_))
        ));

        // …and a valid request on the same connection still works.
        let env = RequestEnvelope {
            id: 8,
            at: SimTime::ZERO,
            request: Request::Deposit {
                user: UserId(1),
                credits: 5.0,
            },
        };
        frame::write_frame(&mut writer, &env.to_json()).unwrap();
        writer.flush().unwrap();
        let reply = frame::read_frame(&mut reader, MAX_FRAME_BYTES)
            .expect("read")
            .expect("reply");
        let envelope = ResponseEnvelope::from_json(&reply).expect("decodes");
        assert_eq!(envelope.id, 8);
        assert!(matches!(envelope.response, Response::Deposited { .. }));
    }

    #[test]
    fn a_broken_frame_drops_only_that_connection() {
        use std::io::Write;

        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");

        // Feed bytes that violate the framing itself.
        let mut vandal = TcpStream::connect(handle.addr()).expect("connect");
        vandal.write_all(b"not a frame at all\n").unwrap();
        vandal.flush().unwrap();

        // The server stays up for everyone else.
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        let r = remote.handle(
            Request::Deposit {
                user: UserId(1),
                credits: 1.0,
            },
            SimTime::ZERO,
        );
        assert!(matches!(r, Response::Deposited { .. }));
    }

    #[test]
    fn observed_server_times_every_request() {
        let samples = Arc::new(Mutex::new(Vec::<(&'static str, std::time::Duration)>::new()));
        let sink = Arc::clone(&samples);
        let handle = Server::spawn_observed(
            SpeQuloS::new(),
            "127.0.0.1:0",
            ServerConfig::default(),
            Box::new(move |kind, took| sink.lock().expect("sink").push((kind, took))),
        )
        .expect("bind loopback");
        let mut remote = RemoteService::connect(handle.addr()).expect("connect");
        for k in 0..5u64 {
            let r = remote.handle(
                Request::Deposit {
                    user: UserId(1),
                    credits: 1.0,
                },
                SimTime::from_secs(k),
            );
            assert!(matches!(r, Response::Deposited { .. }));
        }
        // A batch counts as one served request, tagged "batch".
        let rs = remote.handle_batch(
            vec![
                Request::Predict {
                    bot: botwork::BotId(0),
                },
                Request::Predict {
                    bot: botwork::BotId(1),
                },
            ],
            SimTime::ZERO,
        );
        assert_eq!(rs.len(), 2);
        drop(remote);
        drop(handle);
        let samples = samples.lock().expect("samples");
        assert_eq!(samples.len(), 6, "five deposits + one batch");
        assert_eq!(samples.iter().filter(|(k, _)| *k == "deposit").count(), 5);
        assert_eq!(samples.iter().filter(|(k, _)| *k == "batch").count(), 1);
    }

    #[test]
    fn dropping_the_handle_shuts_the_server_down() {
        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
        let addr = handle.addr();
        drop(handle);
        // The listener is gone: new connections are refused (or, at
        // worst, accepted by nothing and immediately closed).
        let outcome = TcpStream::connect(addr);
        if let Ok(stream) = outcome {
            let mut reader = BufReader::new(stream);
            assert!(matches!(
                read_frame(&mut reader, MAX_FRAME_BYTES),
                Ok(None) | Err(_)
            ));
        }
    }
}
