//! Property coverage for the wire codecs (PROTOCOL.md §§2–5).
//!
//! The binary envelope codec ([`spq_server::binary`]) is hand-rolled and
//! sits on the listening side of the wire, so its contract is pinned
//! adversarially here:
//!
//! * decode(encode(x)) == x for arbitrary envelopes, and the decoded
//!   value re-encodes **bit-identically** (§5);
//! * the decoded value is *value-identical* to what the JSON path would
//!   have carried — `to_json()` of the round-tripped envelope equals
//!   `to_json()` of the original (the ISSUE's cross-codec equivalence);
//! * every truncation of a valid payload is a typed error, never a
//!   panic, and arbitrary byte soup never panics any decoder — envelope
//!   (§5), frame (§§3–4), or hello (§2);
//! * garbage hellos are classified without panicking, and a valid hello
//!   classifies identically no matter what bytes follow it (§2.1);
//! * a live server serves interleaved JSON and binary connections to
//!   the same state (§2), and max-size payloads are the boundary: a
//!   frame at `max_frame_bytes` is served, one past it drops the
//!   connection (§9).

use proptest::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy};
use simcore::SimTime;
use spequlos::credit::CreditError;
use spequlos::oracle::{DeployMode, Prediction, Provisioning, StrategyCombo, Trigger};
use spequlos::protocol::{Request, RequestError, Response, SpqService};
use spequlos::scheduler::CloudAction;
use spequlos::{BotProgress, SpeQuloS, UserId};
use spq_server::binary;
use spq_server::frame::{
    decode_binary_frame, decode_hello, decode_json_frame, hello_line, Codec, HelloOutcome,
    MAX_FRAME_BYTES,
};
use spq_server::{RemoteService, RequestEnvelope, ResponseEnvelope, Server, ServerConfig};

use botwork::BotId;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Strings exercising length prefixes (§5.1): empty, ASCII, multi-byte
/// UTF-8 whose byte length differs from its char count.
fn arb_env() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        const PALETTE: [char; 8] = ['a', 'Z', '0', '_', '/', 'é', '⊕', '😀'];
        bytes
            .into_iter()
            .map(|b| PALETTE[(b % PALETTE.len() as u8) as usize])
            .collect()
    })
}

fn arb_trigger() -> impl Strategy<Value = Trigger> {
    (0u8..4, 0.0f64..1.0).prop_map(|(tag, x)| match tag {
        0 => Trigger::CompletionThreshold(x),
        1 => Trigger::AssignmentThreshold(x),
        2 => Trigger::ExecutionVariance,
        _ => Trigger::RateDrop { fraction: x },
    })
}

fn arb_combo() -> impl Strategy<Value = StrategyCombo> {
    (arb_trigger(), any::<bool>(), 0u8..3).prop_map(|(trigger, greedy, d)| StrategyCombo {
        trigger,
        provisioning: if greedy {
            Provisioning::Greedy
        } else {
            Provisioning::Conservative
        },
        deployment: match d {
            0 => DeployMode::Flat,
            1 => DeployMode::Reschedule,
            _ => DeployMode::CloudDuplication,
        },
    })
}

fn arb_progress() -> impl Strategy<Value = BotProgress> {
    (
        any::<u32>(),
        (any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
    )
        .prop_map(
            |(now_ms, (size, completed, dispatched), (queued, running, cloud_running))| {
                BotProgress {
                    now: SimTime::from_millis(now_ms as u64),
                    size,
                    completed,
                    dispatched,
                    queued,
                    running,
                    cloud_running,
                }
            },
        )
}

fn arb_leaf_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u64>(), 0.0f64..1e12).prop_map(|(u, credits)| Request::Deposit {
            user: UserId(u),
            credits,
        }),
        (any::<u64>(), arb_env(), any::<u32>()).prop_map(|(u, env, size)| Request::RegisterQos {
            user: UserId(u),
            env,
            size,
        }),
        (any::<u64>(), 0.0f64..1e12, arb_combo()).prop_map(|(b, credits, combo)| {
            Request::OrderQos {
                bot: BotId(b),
                credits,
                // Alternate Some/None deterministically off the bot id so
                // both Option arms (§5.1) stay covered.
                strategy: if b % 2 == 0 { Some(combo) } else { None },
            }
        }),
        any::<u64>().prop_map(|b| Request::Predict { bot: BotId(b) }),
        (any::<u64>(), arb_progress()).prop_map(|(b, progress)| Request::ReportProgress {
            bot: BotId(b),
            progress,
        }),
        any::<u64>().prop_map(|b| Request::Complete { bot: BotId(b) }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_leaf_request(),
        proptest::collection::vec(arb_leaf_request(), 0..5).prop_map(Request::Batch),
    ]
}

fn arb_request_envelope() -> impl Strategy<Value = RequestEnvelope> {
    (any::<u64>(), any::<u32>(), arb_request()).prop_map(|(id, at_ms, request)| RequestEnvelope {
        id,
        at: SimTime::from_millis(at_ms as u64),
        request,
    })
}

fn arb_prediction() -> impl Strategy<Value = Prediction> {
    (0.0f64..1e9, 0.0f64..1.0, any::<bool>()).prop_map(|(completion_secs, rate, some)| Prediction {
        completion_secs,
        success_rate: if some { Some(rate) } else { None },
        alpha: rate,
    })
}

fn arb_request_error() -> impl Strategy<Value = RequestError> {
    prop_oneof![
        (0u8..5).prop_map(|c| RequestError::Credit(match c {
            0 => CreditError::InsufficientCredits,
            1 => CreditError::NoOrder,
            2 => CreditError::DuplicateOrder,
            3 => CreditError::OrderClosed,
            _ => CreditError::PoolSaturated,
        })),
        any::<u64>().prop_map(|b| RequestError::UnknownBot(BotId(b))),
        arb_env().prop_map(RequestError::Invalid),
        arb_env().prop_map(RequestError::Transport),
    ]
}

fn arb_leaf_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u64>(), 0.0f64..1e12).prop_map(|(u, balance)| Response::Deposited {
            user: UserId(u),
            balance,
        }),
        any::<u64>().prop_map(|b| Response::Registered { bot: BotId(b) }),
        any::<u64>().prop_map(|b| Response::Ordered { bot: BotId(b) }),
        (any::<u64>(), arb_prediction(), any::<bool>()).prop_map(|(b, p, some)| {
            Response::Predicted {
                bot: BotId(b),
                prediction: if some { Some(p) } else { None },
            }
        }),
        (any::<u64>(), 0u8..3, any::<u32>()).prop_map(|(b, tag, n)| Response::Action {
            bot: BotId(b),
            action: match tag {
                0 => CloudAction::None,
                1 => CloudAction::Start(n),
                _ => CloudAction::StopAll,
            },
        }),
        (any::<u64>(), (0.0f64..1e12, 0.0f64..1e12)).prop_map(|(b, (spent, refund))| {
            Response::Completed {
                bot: BotId(b),
                spent,
                refund,
            }
        }),
        arb_request_error().prop_map(Response::Error),
    ]
}

fn arb_response_envelope() -> impl Strategy<Value = ResponseEnvelope> {
    (
        any::<u64>(),
        prop_oneof![
            arb_leaf_response(),
            proptest::collection::vec(arb_leaf_response(), 0..5).prop_map(Response::Batch),
        ],
    )
        .prop_map(|(id, response)| ResponseEnvelope { id, response })
}

// ---------------------------------------------------------------------------
// §5: binary envelopes round-trip, re-encode bit-identically, and agree
// with the JSON path value-for-value
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn prop_request_roundtrip_binary_and_json_identity(env in arb_request_envelope()) {
        let bytes = binary::encode_request(&env);
        let decoded = binary::decode_request(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(&decoded, &env);
        prop_assert_eq!(binary::encode_request(&decoded), bytes, "re-encode is bit-identical");
        prop_assert_eq!(decoded.to_json(), env.to_json(), "binary carries what JSON carries");
        prop_assert_eq!(binary::peek_id(&binary::encode_request(&env)), Some(env.id));
    }

    #[test]
    fn prop_response_roundtrip_binary_and_json_identity(env in arb_response_envelope()) {
        let bytes = binary::encode_response(&env);
        let decoded = binary::decode_response(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(&decoded, &env);
        prop_assert_eq!(binary::encode_response(&decoded), bytes, "re-encode is bit-identical");
        prop_assert_eq!(decoded.to_json(), env.to_json(), "binary carries what JSON carries");
        prop_assert_eq!(binary::peek_id(&bytes), Some(env.id));
    }

    #[test]
    fn prop_every_truncation_is_a_typed_error(env in arb_request_envelope()) {
        let bytes = binary::encode_request(&env);
        for cut in 0..bytes.len() {
            prop_assert!(
                binary::decode_request(&bytes[..cut]).is_err(),
                "a strict prefix ({cut}/{} bytes) must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn prop_trailing_bytes_are_rejected(env in arb_response_envelope(), junk in 1usize..9) {
        let mut bytes = binary::encode_response(&env);
        bytes.extend(std::iter::repeat_n(0xAA, junk));
        prop_assert_eq!(
            binary::decode_response(&bytes),
            Err(binary::BinError::Trailing(junk))
        );
    }
}

// ---------------------------------------------------------------------------
// §§2–5: no decoder panics on byte soup
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn prop_byte_soup_never_panics_any_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Outcomes are irrelevant; surviving the call is the property.
        let _ = binary::decode_request(&bytes);
        let _ = binary::decode_response(&bytes);
        let _ = binary::peek_id(&bytes);
        let _ = decode_hello(&bytes);
        let _ = decode_json_frame(&bytes, 4096);
        let _ = decode_binary_frame(&bytes, 4096);
        prop_assert!(true);
    }

    #[test]
    fn prop_hello_classifies_regardless_of_what_follows(
        json in any::<bool>(),
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let codec = if json { Codec::Json } else { Codec::Binary };
        let line = hello_line(codec);
        let mut buf = line.clone().into_bytes();
        buf.extend(&junk);
        let classified = decode_hello(&buf).expect("a complete hello is never an error");
        prop_assert_eq!(
            classified,
            Some((HelloOutcome::Hello(codec), line.len())),
            "§2.1: a complete hello line consumes itself exactly, ignoring the tail"
        );
        // §2.3: a leading ASCII digit is a legacy JSON frame header and
        // consumes nothing.
        let mut legacy = vec![b'0' + (junk.len() % 10) as u8];
        legacy.extend(&junk);
        let classified = decode_hello(&legacy).expect("a digit first byte is never an error");
        prop_assert_eq!(classified, Some((HelloOutcome::Legacy, 0)));
    }
}

// ---------------------------------------------------------------------------
// §2: interleaved codecs against one live server
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_interleaved_codecs_share_one_service(
        ops in proptest::collection::vec((any::<bool>(), 1u32..1000), 1..24)
    ) {
        let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind");
        let mut json = RemoteService::connect_with(handle.addr(), Codec::Json).expect("json");
        let mut bin = RemoteService::connect_with(handle.addr(), Codec::Binary).expect("binary");
        let mut expected = 0.0f64;
        for (use_json, amount) in ops {
            let conn: &mut RemoteService = if use_json { &mut json } else { &mut bin };
            let r = conn.handle(
                Request::Deposit { user: UserId(7), credits: amount as f64 },
                SimTime::ZERO,
            );
            expected += amount as f64;
            prop_assert_eq!(
                r,
                Response::Deposited { user: UserId(7), balance: expected },
                "both codecs observe the same running balance"
            );
        }
        drop(json);
        drop(bin);
        let service = handle.into_service();
        prop_assert_eq!(service.credits.balance(UserId(7)), expected);
    }
}

// ---------------------------------------------------------------------------
// §9: max-size payloads are served at the limit, dropped past it
// ---------------------------------------------------------------------------

/// A `RegisterQos` whose *binary* payload (§5) is exactly `target` bytes:
/// fixed fields cost 33 bytes (8 id + 8 t + 1 tag + 8 user + 4 strlen
/// + 4 size), the env string supplies the rest.
fn register_sized_for_binary(target: usize) -> RequestEnvelope {
    let env = "e".repeat(target - 33);
    let envelope = RequestEnvelope {
        id: 0,
        at: SimTime::ZERO,
        request: Request::RegisterQos {
            user: UserId(1),
            env,
            size: 1,
        },
    };
    assert_eq!(binary::encode_request(&envelope).len(), target);
    envelope
}

#[test]
fn a_binary_frame_at_the_limit_is_served_and_one_past_it_drops_the_conn() {
    let limit = 4096;
    let config = ServerConfig {
        max_frame_bytes: limit,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(SpeQuloS::new(), "127.0.0.1:0", config).expect("bind");

    let mut remote = RemoteService::connect_with(handle.addr(), Codec::Binary).expect("connect");
    let at_limit = register_sized_for_binary(limit);
    let r = remote.handle(at_limit.request, SimTime::ZERO);
    assert!(
        matches!(r, Response::Registered { .. }),
        "a frame of exactly max_frame_bytes must be served: {r:?}"
    );

    let over = register_sized_for_binary(limit + 1);
    let r = remote.handle(over.request, SimTime::ZERO);
    assert!(
        matches!(r, Response::Error(RequestError::Transport(_))),
        "one byte past the limit drops the connection (§9): {r:?}"
    );

    // The server itself survives: a fresh connection still works.
    let mut fresh = RemoteService::connect_with(handle.addr(), Codec::Binary).expect("reconnect");
    let r = fresh.handle(
        Request::Deposit {
            user: UserId(1),
            credits: 1.0,
        },
        SimTime::ZERO,
    );
    assert!(matches!(r, Response::Deposited { .. }), "{r:?}");
}

#[test]
fn an_oversized_json_frame_drops_the_conn_but_not_the_server() {
    let limit = 4096;
    let config = ServerConfig {
        max_frame_bytes: limit,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(SpeQuloS::new(), "127.0.0.1:0", config).expect("bind");

    let mut remote = RemoteService::connect_with(handle.addr(), Codec::Json).expect("connect");
    let r = remote.handle(
        Request::RegisterQos {
            user: UserId(1),
            env: "e".repeat(2 * limit),
            size: 1,
        },
        SimTime::ZERO,
    );
    assert!(
        matches!(r, Response::Error(RequestError::Transport(_))),
        "{r:?}"
    );

    let mut fresh = RemoteService::connect_with(handle.addr(), Codec::Json).expect("reconnect");
    let r = fresh.handle(
        Request::Deposit {
            user: UserId(1),
            credits: 1.0,
        },
        SimTime::ZERO,
    );
    assert!(matches!(r, Response::Deposited { .. }), "{r:?}");
}

/// The default 16 MiB ceiling (§3) is comfortably larger than any real
/// envelope; sanity-pin that a large-but-legal batch travels under both
/// codecs and answers value-identically.
#[test]
fn a_large_batch_travels_under_both_codecs_identically() {
    let batch: Vec<Request> = (0..500)
        .map(|i| Request::Deposit {
            user: UserId(i % 7),
            credits: 1.0,
        })
        .collect();
    let envelope = RequestEnvelope {
        id: 9,
        at: SimTime::ZERO,
        request: Request::Batch(batch.clone()),
    };
    assert!(binary::encode_request(&envelope).len() < MAX_FRAME_BYTES);

    let replies: Vec<Vec<Response>> = [Codec::Json, Codec::Binary]
        .iter()
        .map(|&codec| {
            let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind");
            let mut remote = RemoteService::connect_with(handle.addr(), codec).expect("connect");
            remote.handle_batch(batch.clone(), SimTime::ZERO)
        })
        .collect();
    assert_eq!(replies[0], replies[1], "codec must not change semantics");
    assert_eq!(replies[0].len(), 500);
}
