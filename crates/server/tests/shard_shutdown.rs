//! Sharded counterpart of `shutdown.rs`: [`ShardedHandle::into_services`]
//! must keep every acknowledged request even when the shutdown races
//! active clients — including clients whose requests cross shards
//! through the forwarding path, where a reply transits two reactor
//! threads before the client sees it. The invariant is the same either
//! way: a reply can only exist *after* the owning shard executed the
//! request, so replied ⇒ applied holds globally.

use simcore::SimTime;
use spequlos::protocol::{Request, Response, SpqService};
use spequlos::tenancy::shard_of_user;
use spequlos::{RequestError, SpeQuloS, UserId};
use spq_server::{RemoteService, ShardConfig, ShardedServer};
use std::thread;
use std::time::Duration;

const SHARDS: u32 = 4;

fn balance_of(services: &[SpeQuloS], user: UserId) -> f64 {
    services[shard_of_user(user, SHARDS) as usize]
        .credits
        .balance(user)
}

/// Four clients, each a single-tenant connection (so every request is
/// served locally by its shard): every acknowledged deposit must be in
/// the recovered shard state, plus at most one in-flight per client.
#[test]
fn into_services_mid_stream_keeps_every_acknowledged_request() {
    const CLIENTS: u64 = 4;
    const ATTEMPTS: u64 = 10_000;

    let handle = ShardedServer::spawn_loopback(SpeQuloS::new(), ShardConfig::new(SHARDS))
        .expect("bind loopback");
    let addr = handle.addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|user| {
            thread::spawn(move || {
                let mut remote = RemoteService::connect(addr).expect("connect");
                let mut acked = 0u64;
                for k in 0..ATTEMPTS {
                    let response = remote.handle(
                        Request::Deposit {
                            user: UserId(user),
                            credits: 1.0,
                        },
                        SimTime::from_secs(k),
                    );
                    match response {
                        Response::Deposited { .. } => acked += 1,
                        Response::Error(RequestError::Transport(_)) => break,
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                acked
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(25));
    let services = handle.into_services();
    assert_eq!(services.len(), SHARDS as usize);

    for (user, worker) in workers.into_iter().enumerate() {
        let acked = worker.join().expect("client thread");
        let balance = balance_of(&services, UserId(user as u64));
        assert!(
            balance >= acked as f64,
            "user {user}: {acked} deposits acknowledged but balance is {balance}"
        );
        assert!(
            balance <= (acked + 1) as f64,
            "user {user}: balance {balance} exceeds acked {acked} + one in-flight"
        );
    }
}

/// A mixed-tenant connection round-robins users owned by *different*
/// shards, so most requests take the forward → execute → completion
/// path. Shutdown mid-stream must still satisfy replied ⇒ applied, and
/// at most one request (the one whose ack was cut off) may be applied
/// but unacknowledged — the connection is synchronous, so only one
/// request is ever in flight.
#[test]
fn into_services_mid_forward_keeps_every_acknowledged_request() {
    const USERS: u64 = 8;

    let handle = ShardedServer::spawn_loopback(SpeQuloS::new(), ShardConfig::new(SHARDS))
        .expect("bind loopback");
    let addr = handle.addr();
    let worker = thread::spawn(move || {
        let mut remote = RemoteService::connect(addr).expect("connect");
        let mut acked = vec![0u64; USERS as usize];
        for k in 0..40_000u64 {
            let user = UserId(k % USERS);
            let response = remote.handle(
                Request::Deposit { user, credits: 1.0 },
                SimTime::from_secs(k),
            );
            match response {
                Response::Deposited { .. } => acked[user.0 as usize] += 1,
                Response::Error(RequestError::Transport(_)) => break,
                other => panic!("unexpected response: {other:?}"),
            }
        }
        acked
    });

    thread::sleep(Duration::from_millis(25));
    let services = handle.into_services();
    let acked = worker.join().expect("client thread");

    let total_acked: u64 = acked.iter().sum();
    let total_balance: f64 = (0..USERS).map(|u| balance_of(&services, UserId(u))).sum();
    assert!(
        total_balance >= total_acked as f64,
        "{total_acked} deposits acknowledged but {total_balance} recovered"
    );
    assert!(
        total_balance <= (total_acked + 1) as f64,
        "balance {total_balance} exceeds acked {total_acked} + the single in-flight request"
    );
    for u in 0..USERS {
        let balance = balance_of(&services, UserId(u));
        assert!(
            balance >= acked[u as usize] as f64,
            "user {u}: {} acknowledged but balance is {balance}",
            acked[u as usize]
        );
    }
}
