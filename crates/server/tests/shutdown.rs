//! Regression tests for [`ServerHandle::into_service`]'s quiescence
//! assumption: the docs promise "in-flight requests finish first", but
//! nothing used to *prove* state recovery mid-stream loses no
//! acknowledged request. These tests call `into_service` while clients
//! are actively sending — including multi-request `Batch` frames, which
//! must land atomically or not at all — and check the recovered state
//! against the acknowledgement counts the clients saw.

use simcore::SimTime;
use spequlos::protocol::{Request, Response, SpqService};
use spequlos::{RequestError, SpeQuloS, UserId};
use spq_server::{RemoteService, Server};
use std::thread;
use std::time::Duration;

/// Every deposit a client saw acknowledged must be in the recovered
/// state; the state may additionally hold at most the one request per
/// client whose ack was cut off by the shutdown.
#[test]
fn into_service_mid_stream_keeps_every_acknowledged_request() {
    const CLIENTS: u64 = 4;
    const ATTEMPTS: u64 = 10_000;

    let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
    let addr = handle.addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|user| {
            thread::spawn(move || {
                let mut remote = RemoteService::connect(addr).expect("connect");
                let mut acked = 0u64;
                for k in 0..ATTEMPTS {
                    let response = remote.handle(
                        Request::Deposit {
                            user: UserId(user),
                            credits: 1.0,
                        },
                        SimTime::from_secs(k),
                    );
                    match response {
                        Response::Deposited { .. } => acked += 1,
                        Response::Error(RequestError::Transport(_)) => break,
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                acked
            })
        })
        .collect();

    // Recover the service while all four clients are mid-stream.
    thread::sleep(Duration::from_millis(25));
    let service = handle.into_service();

    for (user, worker) in workers.into_iter().enumerate() {
        let acked = worker.join().expect("client thread");
        let balance = service.credits.balance(UserId(user as u64));
        assert!(
            balance >= acked as f64,
            "user {user}: {acked} deposits acknowledged but balance is {balance}"
        );
        assert!(
            balance <= (acked + 1) as f64,
            "user {user}: balance {balance} exceeds acked {acked} + one in-flight"
        );
    }
}

/// A `Batch` frame is atomic in dispatch: recovering the service in the
/// middle of a stream of batches must never expose a half-applied batch.
#[test]
fn into_service_mid_batch_never_splits_a_batch() {
    const BATCH: u64 = 10;

    let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind loopback");
    let addr = handle.addr();
    let worker = thread::spawn(move || {
        let mut remote = RemoteService::connect(addr).expect("connect");
        let mut acked_batches = 0u64;
        for round in 0..5_000u64 {
            let requests: Vec<Request> = (0..BATCH)
                .map(|_| Request::Deposit {
                    user: UserId(0),
                    credits: 1.0,
                })
                .collect();
            let responses = remote.handle_batch(requests, SimTime::from_secs(round));
            if responses
                .iter()
                .any(|r| matches!(r, Response::Error(RequestError::Transport(_))))
            {
                break;
            }
            assert!(responses
                .iter()
                .all(|r| matches!(r, Response::Deposited { .. })));
            acked_batches += 1;
        }
        acked_batches
    });

    thread::sleep(Duration::from_millis(20));
    let service = handle.into_service();
    let acked_batches = worker.join().expect("client thread");

    let balance = service.credits.balance(UserId(0));
    assert_eq!(
        balance % BATCH as f64,
        0.0,
        "balance {balance} is not a whole number of {BATCH}-deposit batches: a batch was split"
    );
    assert!(
        balance >= (acked_batches * BATCH) as f64,
        "{acked_batches} batches acknowledged but balance is only {balance}"
    );
    assert!(
        balance <= ((acked_batches + 1) * BATCH) as f64,
        "balance {balance} exceeds acked batches {acked_batches} + one in flight"
    );
}
