//! Crash-injection suite: `SIGKILL` the durable server mid-run, restart
//! it against the same WAL directory, and prove the recovered
//! billing/credit state is byte-identical to an uninterrupted golden run.
//!
//! The test drives the real `durable_server` binary as a subprocess over
//! TCP — the same deployment shape an operator runs — and kills it with
//! `SIGKILL` (never a graceful shutdown) at fixed acknowledgement counts
//! plus once at an arbitrary wall-clock moment mid-flood. Because the
//! client sends serially over one connection, after `k` acknowledgements
//! the log holds either `k` or `k+1` records (at most one request was in
//! flight); the suite reads the log to learn the exact count `N`, checks
//! the recovered state equals an in-process replay of the first `N`
//! golden requests, then finishes the remaining workload against the
//! restarted server and checks the final state equals the golden run —
//! all comparisons on the full deterministic snapshot encoding
//! ([`spequlos::snapshot::encode_state_json`]), so "equal" means every
//! account balance, order, favor, log line, lease and counter.

use simcore::{SimDuration, SimTime};
use spequlos::protocol::{Request, Response, SpqService};
use spequlos::snapshot::encode_state_json;
use spequlos::wal::{FsyncPolicy, WalStore};
use spequlos::{BotProgress, SpeQuloS, StrategyCombo, UserId};
use spq_server::RemoteService;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const POOL: u32 = 8;
const TICK_MS: u64 = 60_000;
const SNAPSHOT_EVERY: u64 = 50;
const USERS: u64 = 4;

/// The template every recovery validates against — must match the flags
/// [`spawn_server`] passes to the binary.
fn template() -> SpeQuloS {
    SpeQuloS::builder()
        .pool(POOL)
        .tick(SimDuration::from_millis(TICK_MS))
        .build()
}

/// The golden workload: a deterministic ~300-request mix of deposits,
/// registrations, QoS orders, seventy minutes of per-minute progress for
/// four BoTs (crossing the cloud-provisioning trigger, so billing and
/// pool leases are live), and completions with refunds.
fn golden_workload() -> Vec<(SimTime, Request)> {
    let mut requests = Vec::new();
    for user in 0..USERS {
        requests.push((
            SimTime::ZERO,
            Request::Deposit {
                user: UserId(user),
                credits: 400.0 + user as f64,
            },
        ));
        requests.push((
            SimTime::ZERO,
            Request::RegisterQos {
                user: UserId(user),
                env: format!("env-{}", user % 2),
                size: 20,
            },
        ));
    }
    for bot in 0..USERS {
        requests.push((
            SimTime::ZERO,
            Request::OrderQos {
                bot: botwork::BotId(bot),
                credits: 120.0 + bot as f64,
                strategy: Some(StrategyCombo::paper_default()),
            },
        ));
    }
    for tick in 1..=70u64 {
        let now = SimTime::from_mins(tick);
        for bot in 0..USERS {
            let done = ((tick * 20) / 70).min(20) as u32;
            requests.push((
                now,
                Request::ReportProgress {
                    bot: botwork::BotId(bot),
                    progress: BotProgress {
                        now,
                        size: 20,
                        completed: done.min(19),
                        dispatched: 20,
                        queued: 20 - done,
                        running: 2,
                        cloud_running: u32::from(tick > 63),
                    },
                },
            ));
        }
    }
    let end = SimTime::from_mins(71);
    for bot in 0..USERS {
        requests.push((
            end,
            Request::Predict {
                bot: botwork::BotId(bot),
            },
        ));
        requests.push((
            end,
            Request::Complete {
                bot: botwork::BotId(bot),
            },
        ));
    }
    requests
}

/// The uninterrupted run the recovered state must match, after `n`
/// requests (deterministic: same requests, same times, same code path).
fn golden_state_after(n: usize) -> String {
    let mut service = template();
    for (t, request) in &golden_workload()[..n] {
        service.handle(request.clone(), *t);
    }
    encode_state_json(&service).expect("golden state encodes")
}

struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

fn spawn_server(dir: &Path) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_durable_server"))
        .args([
            "--dir",
            dir.to_str().expect("utf-8 dir"),
            "--pool",
            &POOL.to_string(),
            "--tick-ms",
            &TICK_MS.to_string(),
            "--snapshot-every",
            &SNAPSHOT_EVERY.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn durable_server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTENING line");
    let addr = line
        .strip_prefix("LISTENING ")
        .and_then(|a| a.trim().parse().ok())
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"));
    ServerProc { child, addr }
}

impl ServerProc {
    /// `SIGKILL` — no destructors, no flushes, nothing graceful.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spq-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// How many records the WAL holds, without disturbing recovery (the
/// scan is read-validate only; reopening later is idempotent).
fn wal_record_count(dir: &Path) -> usize {
    let (_, recovery) = WalStore::open(dir, FsyncPolicy::Never).expect("wal readable after kill");
    recovery.records().len()
}

/// Kill after exactly `kill_after_acks` acknowledged requests, verify
/// the recovered state against the golden prefix, then finish the
/// workload on a restarted server and verify the final state.
fn crash_at(kill_after_acks: usize, tag: &str) {
    let dir = temp_dir(tag);
    let workload = golden_workload();
    assert!(kill_after_acks < workload.len(), "injection point in range");

    let server = spawn_server(&dir);
    let mut client = RemoteService::connect(server.addr).expect("connect");
    for (t, request) in &workload[..kill_after_acks] {
        let response = client.handle(request.clone(), *t);
        assert!(
            !matches!(
                response,
                Response::Error(spequlos::RequestError::Transport(_))
            ),
            "durability failure surfaced to client: {response:?}"
        );
    }
    drop(client);
    server.kill();

    // The log must hold exactly the acknowledged requests (the client
    // had none in flight when it stopped) — and recovery must rebuild
    // the exact state the golden run has after that many requests.
    let persisted = wal_record_count(&dir);
    assert_eq!(
        persisted, kill_after_acks,
        "every acknowledged request is durable, none invented"
    );
    {
        let (_, recovery) = WalStore::open(&dir, FsyncPolicy::Never).expect("reopen wal");
        let (recovered, report) = recovery.recover(template()).expect("recover");
        if kill_after_acks as u64 >= SNAPSHOT_EVERY {
            assert!(
                report.snapshot_applied > 0,
                "past the snapshot cadence, recovery must use a snapshot"
            );
        }
        assert_eq!(
            encode_state_json(&recovered).expect("recovered encodes"),
            golden_state_after(persisted),
            "recovered state diverges from the golden prefix"
        );
    }

    // Restart against the same directory, finish the workload, kill
    // again, and compare the final recovered state to the full golden
    // run — the crash must leave no trace in the billing state.
    let server = spawn_server(&dir);
    let mut client = RemoteService::connect(server.addr).expect("reconnect");
    for (t, request) in &workload[persisted..] {
        client.handle(request.clone(), *t);
    }
    drop(client);
    server.kill();

    assert_eq!(wal_record_count(&dir), workload.len());
    let (_, recovery) = WalStore::open(&dir, FsyncPolicy::Never).expect("final wal");
    let (recovered, _) = recovery.recover(template()).expect("final recover");
    assert_eq!(
        encode_state_json(&recovered).expect("final encodes"),
        golden_state_after(workload.len()),
        "final state after crash + restart diverges from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_during_registration_phase_recovers_exactly() {
    crash_at(17, "early"); // mid deposits/registrations/orders
}

#[test]
fn sigkill_during_billing_recovers_exactly() {
    crash_at(101, "billing"); // inside the progress/billing stream
}

#[test]
fn sigkill_after_snapshots_recovers_exactly() {
    crash_at(223, "late"); // several snapshots on disk, long tail
}

/// Kill at an arbitrary wall-clock moment while the client floods
/// requests — the ack count is whatever it is, possibly with one request
/// in flight and a torn record on disk. Whatever prefix `N` the log
/// holds, recovery must equal the golden prefix replay of exactly `N`.
#[test]
fn sigkill_at_an_arbitrary_moment_recovers_a_prefix() {
    let dir = temp_dir("timed");
    let workload = golden_workload();
    let server = spawn_server(&dir);
    let addr = server.addr;

    let feeder = std::thread::spawn(move || {
        let mut client = RemoteService::connect(addr).expect("connect");
        let mut acked = 0usize;
        for (t, request) in &golden_workload() {
            let response = client.handle(request.clone(), *t);
            if matches!(
                response,
                Response::Error(spequlos::RequestError::Transport(_))
            ) {
                break; // server died mid-exchange
            }
            acked += 1;
        }
        acked
    });
    std::thread::sleep(std::time::Duration::from_millis(15));
    server.kill();
    let acked = feeder.join().expect("feeder");

    let (_, recovery) = WalStore::open(&dir, FsyncPolicy::Never).expect("wal after timed kill");
    let persisted = recovery.records().len();
    assert!(
        persisted >= acked,
        "acknowledged requests must be durable: acked {acked}, persisted {persisted}"
    );
    assert!(
        persisted <= acked + 1,
        "at most one un-acked request was in flight: acked {acked}, persisted {persisted}"
    );
    assert!(persisted <= workload.len());
    let (recovered, _) = recovery.recover(template()).expect("recover");
    assert_eq!(
        encode_state_json(&recovered).expect("encodes"),
        golden_state_after(persisted),
        "recovered state is not the exact golden prefix"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
