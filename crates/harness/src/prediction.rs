//! Prediction-quality evaluation (Table 4).
//!
//! The paper measures, per execution environment, the fraction of
//! executions whose completion time falls within ±20% of the prediction
//! made at 50% completion, with the α factor learned from all executions
//! of that environment ("we assume perfect knowledge of the history of
//! previous BoT executions", §4.3.3).

use crate::runner::ExecutionMetrics;
use simcore::SimTime;
use spequlos::info::ArchivedExecution;
use spequlos::oracle::{historical_success_rate, learn_alpha};

/// Converts completed runs into the Information module's archive format.
pub fn archive_of(runs: &[ExecutionMetrics]) -> Vec<ArchivedExecution> {
    runs.iter()
        .filter(|m| m.completed)
        .map(|m| ArchivedExecution {
            completed: m.completed_series.clone(),
            size: m.bot_size,
            completion: SimTime::from_secs_f64(m.completion_secs),
        })
        .collect()
}

/// Success rate of predictions made at completion ratio `r` over a set of
/// runs from one environment. Returns `None` when no run reaches `r`.
pub fn prediction_success_rate(runs: &[ExecutionMetrics], r: f64) -> Option<f64> {
    let archive = archive_of(runs);
    if archive.is_empty() {
        return None;
    }
    let alpha = learn_alpha(&archive, r);
    historical_success_rate(&archive, r, alpha)
}

/// Per-run prediction outcomes `(successes, total)` at ratio `r`, with α
/// learned *per environment* (runs are grouped by their `env` label, as
/// the paper prescribes: "the α factor is computed using all available
/// BoT executions with same BE-DCI trace, middleware, and BoT category").
/// Mixed success rates across environments are obtained by summing these
/// counts — never by learning a single α across environments.
pub fn prediction_outcomes(runs: &[ExecutionMetrics], r: f64) -> (u32, u32) {
    use spequlos::oracle::{prediction_successful, raw_estimate};
    use std::collections::BTreeMap;

    let mut by_env: BTreeMap<&str, Vec<&ExecutionMetrics>> = BTreeMap::new();
    for m in runs.iter().filter(|m| m.completed) {
        by_env.entry(&m.env).or_default().push(m);
    }
    let (mut ok, mut total) = (0u32, 0u32);
    for group in by_env.values() {
        let owned: Vec<ExecutionMetrics> = group.iter().map(|m| (*m).clone()).collect();
        let archive = archive_of(&owned);
        let alpha = learn_alpha(&archive, r);
        for exec in &archive {
            let Some(tc) = exec.tc(r) else { continue };
            let Some(raw) = raw_estimate(tc.as_secs_f64(), r) else {
                continue;
            };
            total += 1;
            if prediction_successful(alpha * raw, exec.completion.as_secs_f64()) {
                ok += 1;
            }
        }
    }
    (ok, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::TimeSeries;
    use spequlos::StrategyCombo;

    fn run(linear_span: u64, completion: u64) -> ExecutionMetrics {
        let mut s = TimeSeries::new();
        s.push(SimTime::ZERO, 0.0);
        s.push(SimTime::from_secs(linear_span), 90.0);
        s.push(SimTime::from_secs(completion), 100.0);
        ExecutionMetrics {
            env: "test".into(),
            strategy: Some(StrategyCombo::paper_default()),
            seed: 0,
            completed: true,
            completion_secs: completion as f64,
            tail: None,
            credits_provisioned: 0.0,
            credits_spent: 0.0,
            cloud: Default::default(),
            events: 0,
            completed_series: s,
            bot_size: 100,
            cloud_work_fraction: 0.0,
        }
    }

    #[test]
    fn consistent_tails_predict_well() {
        let runs: Vec<_> = (0..10).map(|i| run(900, 1800 + i * 10)).collect();
        let rate = prediction_success_rate(&runs, 0.5).expect("has history");
        assert!(rate > 0.9, "rate {rate}");
    }

    #[test]
    fn erratic_tails_predict_poorly() {
        // Completion times spanning 2–20× the linear phase defeat any
        // single α.
        let runs: Vec<_> = (0..10).map(|i| run(900, 2000 + i * 2000)).collect();
        let rate = prediction_success_rate(&runs, 0.5).expect("has history");
        assert!(rate < 0.8, "rate {rate}");
    }

    #[test]
    fn empty_input_is_none() {
        assert_eq!(prediction_success_rate(&[], 0.5), None);
    }
}
