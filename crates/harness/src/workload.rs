//! Session-transcript-to-workload extraction for the open-loop load
//! generator.
//!
//! The paper's deployed SpeQuloS (§5) served a *request stream* — months
//! of `registerQoS` / `orderQoS` / monitoring / billing traffic from real
//! BoT users — and the load generator (`spq-bench::loadgen`) must offer
//! the server a mix that looks like that stream, not a synthetic
//! single-kind hammer. This module turns any recorded protocol session
//! into such a mix:
//!
//! 1. [`Recorder`] wraps any [`SpqService`] endpoint and records every
//!    request (with its service time) as it passes through — run a normal
//!    harness experiment against it and the transcript falls out, in
//!    exactly the `Vec<(SimTime, Request)>` shape
//!    [`spequlos::protocol::encode_session`] understands.
//! 2. [`RequestMix::from_session`] reduces a transcript to per-kind
//!    frequencies (batches are flattened — a pipelined tick of N reports
//!    counts as N `report_progress` requests, which is what the server's
//!    dispatch loop actually serves).
//! 3. [`RequestMix::sample`] draws request kinds from those frequencies
//!    deterministically (seeded [`Prng`]), so a load generator driven by
//!    the same seed offers bit-identical request schedules run after run.
//!
//! The split keeps the pieces reusable: the recorder is also a protocol
//! debugging tool (wrap a remote endpoint, diff the transcript), and the
//! mix is plain data that serializes into bench telemetry config.

use simcore::{Prng, SimTime};
use spequlos::protocol::{Request, Response, SpqService};

/// The request kinds of the SpeQuloS protocol, in wire-tag order.
///
/// `Batch` is deliberately absent: a batch is a *framing* construct, not
/// a workload kind — [`RequestMix::from_session`] flattens batches into
/// their constituent requests before counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// `deposit` — administrator credit policy.
    Deposit,
    /// `register_qos` — BoT registration.
    RegisterQos,
    /// `order_qos` — credit provisioning for a BoT.
    OrderQos,
    /// `predict` — completion-time prediction query.
    Predict,
    /// `report_progress` — one monitoring tick.
    ReportProgress,
    /// `complete` — completion, billing, `pay`.
    Complete,
}

/// All kinds, in the canonical order used by [`RequestMix`] weights.
pub const REQUEST_KINDS: [RequestKind; 6] = [
    RequestKind::Deposit,
    RequestKind::RegisterQos,
    RequestKind::OrderQos,
    RequestKind::Predict,
    RequestKind::ReportProgress,
    RequestKind::Complete,
];

impl RequestKind {
    /// The kind of a concrete request (`None` for [`Request::Batch`] —
    /// flatten it first).
    pub fn of(request: &Request) -> Option<RequestKind> {
        Some(match request {
            Request::Deposit { .. } => RequestKind::Deposit,
            Request::RegisterQos { .. } => RequestKind::RegisterQos,
            Request::OrderQos { .. } => RequestKind::OrderQos,
            Request::Predict { .. } => RequestKind::Predict,
            Request::ReportProgress { .. } => RequestKind::ReportProgress,
            Request::Complete { .. } => RequestKind::Complete,
            Request::Batch(_) => return None,
        })
    }

    /// The wire tag, matching [`Request::kind`].
    pub fn tag(self) -> &'static str {
        match self {
            RequestKind::Deposit => "deposit",
            RequestKind::RegisterQos => "register_qos",
            RequestKind::OrderQos => "order_qos",
            RequestKind::Predict => "predict",
            RequestKind::ReportProgress => "report_progress",
            RequestKind::Complete => "complete",
        }
    }

    fn index(self) -> usize {
        REQUEST_KINDS.iter().position(|k| *k == self).expect("kind")
    }
}

/// Per-kind request frequencies extracted from a recorded session
/// transcript; the workload model the open-loop load generator samples
/// from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestMix {
    counts: [u64; REQUEST_KINDS.len()],
}

impl RequestMix {
    /// An empty mix (sampling panics; fill it first).
    pub fn empty() -> Self {
        RequestMix {
            counts: [0; REQUEST_KINDS.len()],
        }
    }

    /// Counts request kinds over a recorded session transcript,
    /// flattening batches (nested batches are protocol-invalid and are
    /// skipped rather than counted).
    pub fn from_session(session: &[(SimTime, Request)]) -> Self {
        let mut mix = RequestMix::empty();
        for (_, request) in session {
            match request {
                Request::Batch(items) => {
                    for item in items {
                        if let Some(kind) = RequestKind::of(item) {
                            mix.counts[kind.index()] += 1;
                        }
                    }
                }
                other => {
                    let kind = RequestKind::of(other).expect("non-batch request has a kind");
                    mix.counts[kind.index()] += 1;
                }
            }
        }
        mix
    }

    /// Builds a mix from explicit `(kind, weight)` pairs (weights of the
    /// same kind accumulate).
    pub fn from_weights(weights: &[(RequestKind, u64)]) -> Self {
        let mut mix = RequestMix::empty();
        for &(kind, w) in weights {
            mix.counts[kind.index()] += w;
        }
        mix
    }

    /// Occurrences of `kind` in the recorded session.
    pub fn count(&self, kind: RequestKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total requests counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The fraction of the mix that is `kind` (0 for an empty mix).
    pub fn share(&self, kind: RequestKind) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(kind) as f64 / total as f64
        }
    }

    /// Draws a request kind with probability proportional to its recorded
    /// frequency. Deterministic in the RNG state: the same seeded
    /// [`Prng`] yields the same kind sequence.
    ///
    /// # Panics
    /// Panics on an empty mix — there is nothing to sample.
    pub fn sample(&self, rng: &mut Prng) -> RequestKind {
        let total = self.total();
        assert!(total > 0, "cannot sample an empty RequestMix");
        let mut ticket = rng.below(total);
        for kind in REQUEST_KINDS {
            let c = self.count(kind);
            if ticket < c {
                return kind;
            }
            ticket -= c;
        }
        unreachable!("ticket < total is covered by the cumulative walk")
    }

    /// One-line human-readable summary, e.g.
    /// `report_progress 92.1% predict 3.4% …` (kinds with zero share are
    /// omitted). Stable formatting, so it can ride in telemetry config.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for kind in REQUEST_KINDS {
            let share = self.share(kind);
            if share > 0.0 {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&format!("{} {:.1}%", kind.tag(), share * 100.0));
            }
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

/// A transparent [`SpqService`] wrapper that records every request (with
/// its service time) flowing to the inner endpoint.
///
/// The recorded session is exactly the transcript shape of
/// [`spequlos::protocol::encode_session`]: feed it to
/// [`spequlos::protocol::replay`] to re-drive any service, or to
/// [`RequestMix::from_session`] to extract a load-generator workload.
///
/// ```
/// use simcore::SimTime;
/// use spequlos::protocol::{Request, SpqService};
/// use spequlos::{SpeQuloS, UserId};
/// use spq_harness::workload::{Recorder, RequestKind, RequestMix};
///
/// let mut endpoint = Recorder::new(SpeQuloS::new());
/// endpoint.handle(
///     Request::Deposit { user: UserId(1), credits: 10.0 },
///     SimTime::ZERO,
/// );
/// let (_service, session) = endpoint.into_parts();
/// let mix = RequestMix::from_session(&session);
/// assert_eq!(mix.count(RequestKind::Deposit), 1);
/// ```
#[derive(Debug)]
pub struct Recorder<S: SpqService> {
    inner: S,
    session: Vec<(SimTime, Request)>,
}

impl<S: SpqService> Recorder<S> {
    /// Wraps an endpoint; recording starts immediately.
    pub fn new(inner: S) -> Self {
        Recorder {
            inner,
            session: Vec::new(),
        }
    }

    /// The session recorded so far.
    pub fn session(&self) -> &[(SimTime, Request)] {
        &self.session
    }

    /// Unwraps into the endpoint and the recorded session.
    pub fn into_parts(self) -> (S, Vec<(SimTime, Request)>) {
        (self.inner, self.session)
    }
}

impl<S: SpqService> SpqService for Recorder<S> {
    fn handle(&mut self, request: Request, now: SimTime) -> Response {
        self.session.push((now, request.clone()));
        self.inner.handle(request, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Experiment, MwKind, Scenario};
    use betrace::Preset;
    use botwork::{BotClass, BotId};
    use spequlos::{SpeQuloS, StrategyCombo, UserId};

    fn sample_session() -> Vec<(SimTime, Request)> {
        vec![
            (
                SimTime::ZERO,
                Request::Deposit {
                    user: UserId(1),
                    credits: 10.0,
                },
            ),
            (
                SimTime::ZERO,
                Request::Batch(vec![
                    Request::Predict { bot: BotId(0) },
                    Request::ReportProgress {
                        bot: BotId(0),
                        progress: spequlos::BotProgress {
                            now: SimTime::ZERO,
                            size: 10,
                            completed: 1,
                            dispatched: 10,
                            queued: 0,
                            running: 9,
                            cloud_running: 0,
                        },
                    },
                ]),
            ),
            (SimTime::from_secs(60), Request::Complete { bot: BotId(0) }),
        ]
    }

    #[test]
    fn mix_counts_kinds_and_flattens_batches() {
        let mix = RequestMix::from_session(&sample_session());
        assert_eq!(mix.count(RequestKind::Deposit), 1);
        assert_eq!(mix.count(RequestKind::Predict), 1);
        assert_eq!(mix.count(RequestKind::ReportProgress), 1);
        assert_eq!(mix.count(RequestKind::Complete), 1);
        assert_eq!(mix.count(RequestKind::RegisterQos), 0);
        assert_eq!(mix.total(), 4);
        assert!((mix.share(RequestKind::Deposit) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_and_respects_support() {
        let mix = RequestMix::from_weights(&[
            (RequestKind::ReportProgress, 90),
            (RequestKind::Predict, 10),
        ]);
        let draw = |seed: u64| -> Vec<RequestKind> {
            let mut rng = Prng::seed_from(seed);
            (0..500).map(|_| mix.sample(&mut rng)).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same kind sequence");
        let kinds = draw(7);
        assert!(kinds
            .iter()
            .all(|k| matches!(k, RequestKind::ReportProgress | RequestKind::Predict)));
        let reports = kinds
            .iter()
            .filter(|k| **k == RequestKind::ReportProgress)
            .count();
        // 90% nominal; leave wide room for small-sample noise.
        assert!((400..=490).contains(&reports), "reports {reports}");
    }

    #[test]
    fn empty_mix_describes_but_does_not_sample() {
        let mix = RequestMix::empty();
        assert_eq!(mix.total(), 0);
        assert_eq!(mix.describe(), "(empty)");
    }

    #[test]
    fn recorder_captures_a_real_experiment_session() {
        let mut sc = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, 11)
            .with_strategy(StrategyCombo::paper_default());
        sc.scale = 0.5;
        let endpoint = Recorder::new(SpeQuloS::builder().tick(sc.tick).build());
        let (metrics, recorder) = Experiment::new(sc).run_qos_with(endpoint);
        assert!(metrics.completed);
        let (_, session) = recorder.into_parts();
        let mix = RequestMix::from_session(&session);
        // The Fig. 3 session shape: exactly one deposit / registration /
        // order / completion, a monitoring report per tick in between.
        assert_eq!(mix.count(RequestKind::Deposit), 1);
        assert_eq!(mix.count(RequestKind::RegisterQos), 1);
        assert_eq!(mix.count(RequestKind::OrderQos), 1);
        assert_eq!(mix.count(RequestKind::Complete), 1);
        assert!(mix.count(RequestKind::ReportProgress) > 10);
        assert!(
            mix.share(RequestKind::ReportProgress) > 0.8,
            "monitoring dominates a real session: {}",
            mix.describe()
        );
        // The transcript round-trips through the protocol encoding.
        let text = spequlos::protocol::encode_session(&session);
        let decoded = spequlos::protocol::decode_session(&text).expect("decodes");
        assert_eq!(decoded, session);
    }
}
