//! Scenario definitions: one point of the paper's evaluation space.
//!
//! The §4.1.3 campaign is the cartesian product of six BE-DCI traces, two
//! middleware, three BoT classes, an optional SpeQuloS strategy
//! combination, and a seed selecting a time window of the trace. A
//! [`Scenario`] captures one such point plus the knobs the ablation
//! experiments sweep.

use betrace::Preset;
use botwork::BotClass;
use dgrid::{BoincConfig, CondorConfig, Deployment, Middleware, SimConfig, XwhepConfig};
use simcore::SimDuration;
use spequlos::{DeployMode, StrategyCombo};

/// Middleware choice (parameters come from the scenario knobs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MwKind {
    /// BOINC.
    Boinc,
    /// XtremWeb-HEP.
    Xwhep,
    /// Condor-like (signaled preemption + checkpoint/restart) — the
    /// paper's third candidate middleware (§2.2); not part of the paper's
    /// evaluation grid, used by the middleware ablation.
    Condor,
}

impl MwKind {
    /// The paper's evaluation grid: BOINC and XtremWeb-HEP.
    pub const ALL: [MwKind; 2] = [MwKind::Boinc, MwKind::Xwhep];

    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MwKind::Boinc => "BOINC",
            MwKind::Xwhep => "XWHEP",
            MwKind::Condor => "CONDOR",
        }
    }
}

/// One BoT execution configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// BE-DCI trace preset.
    pub preset: Preset,
    /// Desktop-grid middleware.
    pub mw: MwKind,
    /// BoT class.
    pub class: BotClass,
    /// SpeQuloS strategy; `None` runs the bare BE-DCI baseline.
    pub strategy: Option<StrategyCombo>,
    /// Master seed: selects the trace window, workload sample and all
    /// scheduling randomness.
    pub seed: u64,
    /// Infrastructure scale factor (1.0 = the published node counts).
    pub scale: f64,
    /// Credits provisioned as a fraction of the BoT workload in
    /// CPU·hours (the paper fixes 10%, §4.1.3).
    pub credit_fraction: f64,
    /// Monitoring/billing period.
    pub tick: SimDuration,
    /// Cloud instance boot delay.
    pub boot_delay: SimDuration,
    /// XtremWeb-HEP failure-detection timeout.
    pub worker_timeout: SimDuration,
    /// BOINC replica deadline.
    pub delay_bound: SimDuration,
    /// BOINC `resend_lost_results` (see `dgrid::BoincConfig`).
    pub boinc_resend: bool,
    /// Condor checkpoint/restart (see `dgrid::CondorConfig`).
    pub condor_checkpointing: bool,
    /// Simulation-time cap.
    pub max_sim_time: SimDuration,
}

impl Scenario {
    /// A scenario with the paper's default parameters.
    pub fn new(preset: Preset, mw: MwKind, class: BotClass, seed: u64) -> Self {
        Scenario {
            preset,
            mw,
            class,
            strategy: None,
            seed,
            scale: 1.0,
            credit_fraction: 0.10,
            tick: SimDuration::from_secs(60),
            boot_delay: SimDuration::from_secs(120),
            worker_timeout: SimDuration::from_secs(900),
            delay_bound: SimDuration::from_days(1),
            boinc_resend: true,
            condor_checkpointing: true,
            max_sim_time: SimDuration::from_days(120),
        }
    }

    /// Same scenario with a SpeQuloS strategy enabled.
    pub fn with_strategy(mut self, strategy: StrategyCombo) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Environment label used as the Information-module archive key:
    /// `trace/middleware/class`.
    pub fn env(&self) -> String {
        format!(
            "{}/{}/{}",
            self.preset.spec().name,
            self.mw.name(),
            self.class.spec().name
        )
    }

    /// The middleware configuration with this scenario's knobs applied.
    pub fn middleware(&self) -> Middleware {
        match self.mw {
            MwKind::Boinc => Middleware::Boinc(BoincConfig {
                delay_bound: self.delay_bound,
                resend_lost_results: self.boinc_resend,
                ..BoincConfig::default()
            }),
            MwKind::Xwhep => Middleware::Xwhep(XwhepConfig {
                worker_timeout: self.worker_timeout,
                ..XwhepConfig::default()
            }),
            MwKind::Condor => Middleware::Condor(CondorConfig {
                checkpointing: self.condor_checkpointing,
                ..CondorConfig::default()
            }),
        }
    }

    /// The simulator configuration for this scenario.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.middleware());
        cfg.tick = self.tick;
        cfg.boot_and_strategy(self);
        cfg.max_sim_time = self.max_sim_time;
        cfg
    }
}

/// When the tenants of a [`MultiTenantScenario`] submit their BoTs,
/// relative to the start of the shared service clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantArrivals {
    /// Every tenant submits at t = 0: worst-case contention on the pool
    /// and on admission control.
    Simultaneous,
    /// Tenant `i` of `n` submits at `i × window / (n − 1)`: a steady
    /// stream of QoS orders.
    Uniform {
        /// Time by which the last tenant has arrived.
        window: SimDuration,
    },
    /// Arrival density grows towards the end of the window (offsets follow
    /// `1 − (1 − f)²`): most tenants pile up late, so the service sees a
    /// calm phase followed by an order burst — the tail-heavy load shape
    /// the paper's EDGI deployment reports (§5).
    TailHeavy {
        /// Time by which the last tenant has arrived.
        window: SimDuration,
    },
}

impl TenantArrivals {
    /// Submission offset of tenant `i` of `n` — O(1), so arrival plans
    /// for very large tenant populations (the `repro_multitenant
    /// --tenants 100000` storm) can be generated streamingly instead of
    /// materialising an O(n) vector up front.
    pub fn offset_of(self, i: u32, n: u32) -> SimDuration {
        let ramp = |shape: fn(f64) -> f64, window: SimDuration| {
            let frac = if n <= 1 {
                0.0
            } else {
                f64::from(i) / f64::from(n - 1)
            };
            SimDuration::from_secs_f64(window.as_secs_f64() * shape(frac))
        };
        match self {
            TenantArrivals::Simultaneous => SimDuration::from_secs(0),
            TenantArrivals::Uniform { window } => ramp(|f| f, window),
            TenantArrivals::TailHeavy { window } => ramp(|f| 1.0 - (1.0 - f) * (1.0 - f), window),
        }
    }

    /// Submission offset of each of `n` tenants (deterministic, sorted);
    /// the eager form of [`TenantArrivals::offset_of`].
    pub fn offsets(self, n: u32) -> Vec<SimDuration> {
        (0..n).map(|i| self.offset_of(i, n)).collect()
    }
}

/// A multi-tenant evaluation point: `tenants` users run BoTs concurrently
/// against **one** SpeQuloS service whose cloud is capped at
/// `pool_capacity` workers — the operating regime of the deployed service
/// (§5) that single-BoT scenarios never exercise. Each tenant runs the
/// `base` scenario on its own infrastructure instance and seed
/// (`base.seed + tenant index`), so tenants couple only through the
/// service: the shared credit economy, admission control, and fair-share
/// arbitration of the pool.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiTenantScenario {
    /// Per-tenant scenario template; must carry a strategy.
    pub base: Scenario,
    /// Number of concurrent tenants.
    pub tenants: u32,
    /// When each tenant submits its BoT and QoS order.
    pub arrivals: TenantArrivals,
    /// Shared cloud-worker pool capacity.
    pub pool_capacity: u32,
}

impl MultiTenantScenario {
    /// A multi-tenant scenario with simultaneous arrivals.
    pub fn new(base: Scenario, tenants: u32, pool_capacity: u32) -> Self {
        MultiTenantScenario {
            base,
            tenants,
            arrivals: TenantArrivals::Simultaneous,
            pool_capacity,
        }
    }

    /// Same scenario with a different arrival pattern.
    pub fn with_arrivals(mut self, arrivals: TenantArrivals) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// The concrete scenario of tenant `i`: the template with a
    /// tenant-specific seed (distinct trace window, workload sample and
    /// scheduling randomness per tenant).
    pub fn tenant_scenario(&self, i: u32) -> Scenario {
        let mut sc = self.base.clone();
        sc.seed = self.base.seed.wrapping_add(u64::from(i));
        sc
    }
}

/// Maps the core crate's middleware-independent deployment mode onto the
/// simulator's.
pub fn deployment_of(mode: DeployMode) -> Deployment {
    match mode {
        DeployMode::Flat => Deployment::Flat,
        DeployMode::Reschedule => Deployment::Reschedule,
        DeployMode::CloudDuplication => Deployment::CloudDuplication,
    }
}

/// Helper trait to keep `SimConfig` assembly in one place.
trait SimConfigExt {
    fn boot_and_strategy(&mut self, sc: &Scenario);
}

impl SimConfigExt for SimConfig {
    fn boot_and_strategy(&mut self, sc: &Scenario) {
        self.cloud_boot_delay = sc.boot_delay;
        if let Some(strategy) = sc.strategy {
            self.deployment = deployment_of(strategy.deployment);
            self.stop_idle_cloud = strategy.provisioning == spequlos::Provisioning::Greedy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spequlos::Provisioning;

    #[test]
    fn env_label_format() {
        let s = Scenario::new(Preset::Seti, MwKind::Xwhep, BotClass::Small, 1);
        assert_eq!(s.env(), "seti/XWHEP/SMALL");
    }

    #[test]
    fn middleware_uses_knobs() {
        let mut s = Scenario::new(Preset::Seti, MwKind::Xwhep, BotClass::Small, 1);
        s.worker_timeout = SimDuration::from_secs(300);
        match s.middleware() {
            Middleware::Xwhep(cfg) => assert_eq!(cfg.worker_timeout, SimDuration::from_secs(300)),
            _ => panic!("wrong middleware"),
        }
        let mut s = Scenario::new(Preset::Seti, MwKind::Boinc, BotClass::Small, 1);
        s.delay_bound = SimDuration::from_hours(6);
        match s.middleware() {
            Middleware::Boinc(cfg) => assert_eq!(cfg.delay_bound, SimDuration::from_hours(6)),
            _ => panic!("wrong middleware"),
        }
    }

    #[test]
    fn tenant_arrival_offsets() {
        let n = 5;
        let window = SimDuration::from_hours(4);
        assert!(TenantArrivals::Simultaneous
            .offsets(n)
            .iter()
            .all(|d| d.is_zero()));
        let uni = TenantArrivals::Uniform { window }.offsets(n);
        assert_eq!(uni[0], SimDuration::from_secs(0));
        assert_eq!(uni[4], window);
        assert_eq!(uni[2], SimDuration::from_hours(2));
        let tail = TenantArrivals::TailHeavy { window }.offsets(n);
        assert_eq!(tail[4], window);
        // Concave ramp: the median tenant arrives later than uniform, i.e.
        // arrivals concentrate near the end of the window.
        assert!(tail[2] > uni[2], "{:?} vs {:?}", tail[2], uni[2]);
        assert_eq!(tail[2], SimDuration::from_hours(3));
        assert!(tail.windows(2).all(|w| w[0] <= w[1]), "sorted");
        // Single tenant: offset 0 whatever the pattern.
        assert_eq!(
            TenantArrivals::TailHeavy { window }.offsets(1),
            vec![SimDuration::from_secs(0)]
        );
    }

    #[test]
    fn tenant_scenarios_vary_only_the_seed() {
        let base = Scenario::new(Preset::Seti, MwKind::Xwhep, BotClass::Small, 100)
            .with_strategy(StrategyCombo::paper_default());
        let mt = MultiTenantScenario::new(base, 4, 10);
        for i in 0..4 {
            let sc = mt.tenant_scenario(i);
            assert_eq!(sc.seed, 100 + u64::from(i));
            assert_eq!(sc.env(), mt.base.env(), "tenants share the archive key");
        }
    }

    #[test]
    fn sim_config_follows_strategy() {
        let s = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, 2)
            .with_strategy(StrategyCombo::paper_default());
        let cfg = s.sim_config();
        assert_eq!(cfg.deployment, Deployment::Reschedule);
        assert!(!cfg.stop_idle_cloud, "Conservative keeps idle workers");

        let mut combo = StrategyCombo::paper_default();
        combo.provisioning = Provisioning::Greedy;
        combo.deployment = DeployMode::CloudDuplication;
        let s = s.with_strategy(combo);
        let cfg = s.sim_config();
        assert_eq!(cfg.deployment, Deployment::CloudDuplication);
        assert!(cfg.stop_idle_cloud, "Greedy stops idle workers");
    }
}
