//! The unified experiment API: one builder for every run mode and every
//! transport.
//!
//! Historically the harness exposed four unrelated free functions —
//! `run_baseline`, `run_with_spequlos`, `run_paired`, `run_multi_tenant` —
//! and every repro binary, bench and example wired them up by hand. An
//! [`Experiment`] replaces all four behind one builder:
//!
//! ```
//! use betrace::Preset;
//! use botwork::BotClass;
//! use spequlos::StrategyCombo;
//! use spq_harness::{Experiment, MwKind, Scenario};
//!
//! let mut sc = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, 7)
//!     .with_strategy(StrategyCombo::paper_default());
//! sc.scale = 0.3; // shrink the cluster for a quick run
//!
//! // Seed-paired baseline + SpeQuloS comparison (§4.2.1):
//! let paired = Experiment::new(sc.clone()).paired().run_paired();
//! assert!(paired.baseline.completed && paired.speq.completed);
//!
//! // Multi-tenant: 4 concurrent BoTs over a shared 8-worker pool:
//! let report = Experiment::new(sc).tenants(4).pool(8).run_multi_tenant();
//! assert_eq!(report.tenants.len(), 4);
//! ```
//!
//! The run mode is inferred: `.tenants(n)` selects a multi-tenant run,
//! `.paired()` a seed-paired comparison, otherwise the scenario runs alone
//! — with SpeQuloS when it carries a strategy, bare baseline when not.
//! `run()` returns the mode-tagged [`Outcome`]; the typed `run_*`
//! shortcuts skip the match when the mode is statically known.
//!
//! Since the transport redesign the SpeQuloS side of every run is driven
//! through the wire protocol ([`spequlos::protocol`]), so the service can
//! live anywhere:
//!
//! * [`Transport::InProcess`] (default) — the service is a local value,
//!   requests are plain calls;
//! * [`Transport::Loopback`] — the experiment spawns a `spq-server` on
//!   `127.0.0.1`, drives the whole run through `RemoteService`
//!   connections, then shuts the server down and recovers the service.
//!   Results are bit-identical to the in-process transport (pinned by
//!   `tests/remote.rs`);
//! * [`Experiment::run_qos_with`] / [`Experiment::service_dyn`] — bring
//!   your own endpoint (`&mut dyn SpqService` works) for anything beyond
//!   loopback.

use crate::routed::{RoutedService, SharedRouted};
use crate::runner::{
    metrics_from, ExecutionMetrics, MultiTenantReport, PairedRun, SessionRecorder, SessionSink,
    SharedService, SharedSpqHook, SpqHook, TenantOutcome,
};
use crate::scenario::{MultiTenantScenario, Scenario, TenantArrivals};
use botwork::{generate, Bot, BotId};
use dgrid::{run_many, GridSim, NoQos};
use simcore::{SimDuration, SimTime};
use spequlos::protocol::{Request, Response, SpqService};
use spequlos::{tail_removal_efficiency, SpeQuloS, StrategyCombo, UserId, CREDITS_PER_CPU_HOUR};
use spq_server::{Codec, RemoteService, Server, ShardConfig, ShardedServer};

/// Deterministic ledger-rebalance cadence for sharded multi-tenant runs:
/// one [`spequlos::tenancy::PoolLedger::rebalance`] pass per this many
/// handled requests, on both transports — part of what keeps the
/// in-process [`RoutedService`] and the loopback
/// [`ShardedServer`] bit-identical.
const SHARD_REBALANCE_EVERY: u64 = 64;

/// Where the SpeQuloS service lives during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// The service is an in-process value; protocol requests are plain
    /// method calls. The default.
    #[default]
    InProcess,
    /// The service runs behind a `spq-server` on a loopback TCP port,
    /// spawned and torn down by the experiment; every request crosses
    /// the framed wire through a `RemoteService` connection (one per
    /// tenant in multi-tenant mode). Bit-identical to
    /// [`Transport::InProcess`].
    Loopback,
}

/// A runnable experiment: one scenario plus the run-mode knobs.
///
/// Built with [`Experiment::new`], configured with the chained setters,
/// executed with [`Experiment::run`] (or a typed `run_*` shortcut). See
/// the [module docs](self) for examples and the migration map from the
/// removed free functions.
#[derive(Clone, Debug)]
pub struct Experiment {
    scenario: Scenario,
    paired: bool,
    tenants: Option<u32>,
    pool: Option<u32>,
    shards: u32,
    arrivals: TenantArrivals,
    service: Option<SpeQuloS>,
    transport: Transport,
    codec: Codec,
    record: Option<SessionSink>,
}

/// What an [`Experiment::run`] produced, tagged by run mode.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// A bare BE-DCI execution (no strategy on the scenario).
    Baseline(ExecutionMetrics),
    /// A single QoS-supported execution, with the final service state
    /// (billing, archive, favors).
    Qos {
        /// The execution's metrics.
        metrics: ExecutionMetrics,
        /// The service after the run (boxed: the service carries the
        /// whole execution archive).
        service: Box<SpeQuloS>,
    },
    /// A seed-paired baseline + SpeQuloS comparison.
    Paired(PairedRun),
    /// A multi-tenant run over a shared service and pool.
    MultiTenant(MultiTenantReport),
}

impl Outcome {
    /// The execution metrics of a single-run outcome (the SpeQuloS side
    /// of a paired run).
    ///
    /// # Panics
    /// Panics on a multi-tenant outcome — use [`Outcome::into_multi_tenant`].
    pub fn into_metrics(self) -> ExecutionMetrics {
        match self {
            Outcome::Baseline(m) => m,
            Outcome::Qos { metrics, .. } => metrics,
            Outcome::Paired(p) => p.speq,
            Outcome::MultiTenant(_) => {
                panic!("multi-tenant outcome has per-tenant metrics; use into_multi_tenant()")
            }
        }
    }

    /// The paired comparison.
    ///
    /// # Panics
    /// Panics unless the experiment ran `.paired()`.
    pub fn into_paired(self) -> PairedRun {
        match self {
            Outcome::Paired(p) => p,
            other => panic!("expected a paired outcome, got {}", other.mode_name()),
        }
    }

    /// The multi-tenant report.
    ///
    /// # Panics
    /// Panics unless the experiment ran `.tenants(n)`.
    pub fn into_multi_tenant(self) -> MultiTenantReport {
        match self {
            Outcome::MultiTenant(r) => r,
            other => panic!("expected a multi-tenant outcome, got {}", other.mode_name()),
        }
    }

    fn mode_name(&self) -> &'static str {
        match self {
            Outcome::Baseline(_) => "baseline",
            Outcome::Qos { .. } => "qos",
            Outcome::Paired(_) => "paired",
            Outcome::MultiTenant(_) => "multi-tenant",
        }
    }
}

/// Per-tenant bookkeeping carried from setup to report assembly.
type TenantMeta = (u32, UserId, SimDuration, Scenario, f64, u32);

/// What one tenant's simulation produced, with the endpoint already
/// dropped (so shared in-process services can be unwrapped).
struct TenantRun {
    result: dgrid::RunResult,
    bot: BotId,
    admitted: bool,
    spent: f64,
}

impl Experiment {
    /// An experiment over one scenario. The run mode defaults to a single
    /// execution — with SpeQuloS when the scenario carries a strategy,
    /// bare baseline otherwise — on the in-process transport.
    pub fn new(scenario: Scenario) -> Self {
        Experiment {
            scenario,
            paired: false,
            tenants: None,
            pool: None,
            shards: 1,
            arrivals: TenantArrivals::Simultaneous,
            service: None,
            transport: Transport::InProcess,
            codec: Codec::Json,
            record: None,
        }
    }

    /// A multi-tenant experiment from an explicit [`MultiTenantScenario`].
    pub fn from_multi_tenant(mt: MultiTenantScenario) -> Self {
        Experiment::new(mt.base)
            .tenants(mt.tenants)
            .pool(mt.pool_capacity)
            .arrivals(mt.arrivals)
    }

    /// Runs the same seed with and without SpeQuloS (§4.2.1's fair
    /// comparison). Requires a strategy on the scenario.
    pub fn paired(mut self) -> Self {
        self.paired = true;
        self
    }

    /// Runs `n` concurrent tenants against one shared service; pair with
    /// [`Experiment::pool`]. Tenant `i` runs the scenario with seed
    /// `base.seed + i` (see [`MultiTenantScenario`]).
    pub fn tenants(mut self, n: u32) -> Self {
        self.tenants = Some(n);
        self
    }

    /// Caps the shared cloud-worker pool at `capacity` (multi-tenant
    /// runs; on a single QoS run it builds a pooled service).
    pub fn pool(mut self, capacity: u32) -> Self {
        self.pool = Some(capacity);
        self
    }

    /// Tenant arrival pattern (multi-tenant runs; default simultaneous).
    pub fn arrivals(mut self, arrivals: TenantArrivals) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Partitions a multi-tenant run's service state into `n` shards
    /// (default 1, unsharded): tenants route by stable hash, the pool
    /// becomes per-shard quotas under a deterministic rebalancing ledger
    /// (one pass per `SHARD_REBALANCE_EVERY` = 64 requests). In-process
    /// runs drive a [`RoutedService`]; loopback runs spawn a real
    /// `spq_server::ShardedServer`. Results are pinned per shard count:
    /// the same experiment at the same `n` is bit-identical on either
    /// transport, but a different `n` partitions the pool differently
    /// and is a *different* experiment.
    pub fn shards(mut self, n: u32) -> Self {
        assert!(n >= 1, "an experiment needs at least one shard");
        self.shards = n;
        self
    }

    /// Selects where the service lives during the run (default
    /// [`Transport::InProcess`]); see [`Experiment::loopback`].
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Runs the experiment end-to-end over loopback TCP: the service is
    /// served by a `spq-server` the experiment spawns, every protocol
    /// request crosses the framed wire, and the service state is
    /// recovered at shutdown — results are bit-identical to the default
    /// in-process transport.
    ///
    /// ```no_run
    /// use betrace::Preset;
    /// use botwork::BotClass;
    /// use spequlos::StrategyCombo;
    /// use spq_harness::{Experiment, MwKind, Scenario};
    ///
    /// let sc = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, 7)
    ///     .with_strategy(StrategyCombo::paper_default());
    /// let (remote, _service) = Experiment::new(sc).loopback().run_qos();
    /// assert!(remote.completed);
    /// ```
    pub fn loopback(self) -> Self {
        self.transport(Transport::Loopback)
    }

    /// Selects the frame codec loopback connections negotiate
    /// (PROTOCOL.md §2; default [`Codec::Json`]). No effect on the
    /// in-process transport — and none on results either: both codecs
    /// carry the same values, so runs stay bit-identical (pinned by
    /// `tests/remote.rs`).
    pub fn codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Seeds a single QoS run with an existing service — credits, archive
    /// and favor state carry over (e.g. to accumulate prediction history
    /// across runs). Only meaningful for QoS and paired runs (the QoS
    /// half); baseline and multi-tenant modes reject a configured service
    /// instead of silently discarding its state. The carried service's
    /// clock granularity must match the scenario's tick — billing runs at
    /// the service's granularity since the protocol redesign.
    pub fn service(mut self, service: SpeQuloS) -> Self {
        self.service = Some(service);
        self
    }

    /// Overrides the scenario's strategy.
    pub fn strategy(mut self, strategy: spequlos::StrategyCombo) -> Self {
        self.scenario.strategy = Some(strategy);
        self
    }

    /// Records every protocol request the run sends — with its simulated
    /// timestamp, in service arrival order — into `sink`, by wrapping
    /// each endpoint in a [`SessionRecorder`]. The recorded transcript
    /// replayed through a fresh service of the same configuration
    /// rebuilds the final state bit-for-bit (the WAL-replay determinism
    /// leg pins this), which is what makes the write-ahead log in
    /// `spequlos::wal` a complete durability story.
    pub fn record_into(mut self, sink: SessionSink) -> Self {
        self.record = Some(sink);
        self
    }

    /// Executes the experiment in its configured mode.
    pub fn run(self) -> Outcome {
        if self.tenants.is_some() {
            Outcome::MultiTenant(self.run_multi_tenant())
        } else if self.paired {
            Outcome::Paired(self.run_paired())
        } else if self.scenario.strategy.is_some() {
            let (metrics, service) = self.run_qos();
            Outcome::Qos {
                metrics,
                service: Box::new(service),
            }
        } else {
            assert!(
                self.service.is_none(),
                "a .service(…) was configured but the scenario has no strategy: \
                 a baseline run would silently discard the carried service state \
                 — add a strategy or drop the .service() call"
            );
            Outcome::Baseline(self.run_baseline())
        }
    }

    /// Generates the experiment's BoT (deterministic in `(class, seed)`).
    pub fn bot(&self) -> Bot {
        generate(self.scenario.class, BotId(0), self.scenario.seed)
    }

    /// Runs the scenario without SpeQuloS (the paper's baseline),
    /// ignoring any strategy it carries. No service is involved, so the
    /// transport setting is irrelevant here.
    pub fn run_baseline(&self) -> ExecutionMetrics {
        let mut sc = self.scenario.clone();
        sc.strategy = None;
        let bot = generate(sc.class, BotId(0), sc.seed);
        let dci = sc.preset.spec().build(sc.seed, sc.scale);
        let sim = GridSim::new(dci, &bot, sc.sim_config(), sc.seed, NoQos);
        let (result, _) = sim.run();
        metrics_from(&sc, &result, 0.0, 0.0, bot.size() as u32)
    }

    /// Runs the scenario with SpeQuloS over the configured transport.
    /// Uses the service from [`Experiment::service`] if one was provided
    /// (fresh otherwise — pooled via [`Experiment::pool`] when set, clock
    /// granularity matching the scenario tick), and returns the service
    /// back with the metrics.
    ///
    /// # Panics
    /// Panics if the scenario has no strategy, or if a carried service's
    /// clock granularity disagrees with the scenario's tick.
    pub fn run_qos(self) -> (ExecutionMetrics, SpeQuloS) {
        let service = match self.service {
            Some(service) => {
                assert_eq!(
                    service.tick_granularity(),
                    self.scenario.tick,
                    "the carried service bills ReportProgress at its own clock \
                     granularity; assemble it with SpeQuloS::builder().tick(…) \
                     matching the scenario's tick"
                );
                service
            }
            None => Self::service_for(&self.scenario, self.pool),
        };
        match self.transport {
            Transport::InProcess => match self.record {
                Some(sink) => {
                    let (metrics, recorder) =
                        Self::drive_qos(&self.scenario, SessionRecorder::new(service, sink));
                    (metrics, recorder.into_inner())
                }
                None => Self::drive_qos(&self.scenario, service),
            },
            Transport::Loopback => {
                let handle = Server::spawn_loopback(service).expect("bind loopback server");
                let remote = RemoteService::connect_with(handle.addr(), self.codec)
                    .expect("connect to loopback server");
                let metrics = match self.record {
                    Some(sink) => {
                        let (metrics, recorder) =
                            Self::drive_qos(&self.scenario, SessionRecorder::new(remote, sink));
                        drop(recorder);
                        metrics
                    }
                    None => {
                        let (metrics, remote) = Self::drive_qos(&self.scenario, remote);
                        drop(remote);
                        metrics
                    }
                };
                (metrics, handle.into_service())
            }
        }
    }

    /// Runs the QoS scenario against a caller-provided protocol endpoint
    /// — the transport-agnostic seam under [`Experiment::run_qos`]. The
    /// endpoint must be empty of prior state for this scenario (the run
    /// opens its own deposit → register → order session); billing comes
    /// back through the `Completed` response, so the metrics are complete
    /// even when the service's internals are unreachable.
    ///
    /// **Contract:** the service behind the endpoint must bill at the
    /// scenario's monitoring tick (`SpeQuloS::builder().tick(…)`), since
    /// `ReportProgress` billing runs at the *service's* clock
    /// granularity. Unlike [`Experiment::service`], this cannot be
    /// asserted here — a remote endpoint's granularity is not observable
    /// through the protocol — so a mismatch silently mis-bills.
    pub fn run_qos_with<S: SpqService>(&self, endpoint: S) -> (ExecutionMetrics, S) {
        Self::drive_qos(&self.scenario, endpoint)
    }

    /// [`Experiment::run_qos_with`] behind `&mut dyn SpqService`: drives
    /// the scenario through any object-safe endpoint (an in-process
    /// service, a `RemoteService`, a test double) without knowing its
    /// type. The same clock-granularity contract applies.
    pub fn service_dyn(&self, endpoint: &mut dyn SpqService) -> ExecutionMetrics {
        let (metrics, _) = Self::drive_qos(&self.scenario, endpoint);
        metrics
    }

    /// Runs the same scenario with and without SpeQuloS on the same seed
    /// and scores the Tail Removal Efficiency.
    ///
    /// # Panics
    /// Panics if the scenario has no strategy.
    pub fn run_paired(self) -> PairedRun {
        let baseline = self.run_baseline();
        let (speq, _service) = self.run_qos();
        let tre = match (&baseline.tail, baseline.completed, speq.completed) {
            (Some(tail), true, true) => tail_removal_efficiency(
                tail.ideal,
                SimTime::from_secs_f64(baseline.completion_secs),
                SimTime::from_secs_f64(speq.completion_secs),
            ),
            _ => None,
        };
        let speedup = if speq.completion_secs > 0.0 {
            baseline.completion_secs / speq.completion_secs
        } else {
            1.0
        };
        PairedRun {
            baseline,
            speq,
            tre,
            speedup,
        }
    }

    /// Runs `tenants` concurrent BoT executions against one shared
    /// SpeQuloS service with a bounded cloud-worker pool, over the
    /// configured transport (in-process sharing, or one `RemoteService`
    /// connection per tenant to a spawned loopback server).
    /// Deterministic: the same experiment reproduces the same report
    /// bit-for-bit, on either transport.
    ///
    /// # Panics
    /// Panics if the scenario has no strategy, if `.tenants(n)` /
    /// `.pool(capacity)` were not both configured, or if a `.service(…)`
    /// was configured (multi-tenant runs build their own pooled service;
    /// silently discarding a carried one would lose its state).
    pub fn run_multi_tenant(self) -> MultiTenantReport {
        let tenants = self
            .tenants
            .expect("a multi-tenant experiment requires .tenants(n)");
        let pool_capacity = self
            .pool
            .expect("a multi-tenant experiment requires .pool(capacity)");
        assert!(
            self.service.is_none(),
            "multi-tenant experiments build their own pooled service; \
             a carried .service(…) would be silently discarded"
        );
        let mt = MultiTenantScenario {
            base: self.scenario,
            tenants,
            arrivals: self.arrivals,
            pool_capacity,
        };
        let strategy = mt
            .base
            .strategy
            .expect("a multi-tenant experiment requires a strategy on the scenario");
        let service = SpeQuloS::builder()
            .pool(mt.pool_capacity)
            .tick(mt.base.tick)
            .build();
        if self.shards > 1 {
            return Self::run_multi_tenant_sharded(
                &mt,
                strategy,
                service,
                self.shards,
                self.transport,
                self.codec,
                self.record,
            );
        }
        match self.transport {
            Transport::InProcess => {
                let shared = SharedService::new(service);
                let (runs, meta) = match self.record {
                    Some(sink) => {
                        let mut admin = SessionRecorder::new(shared.clone(), sink.clone());
                        let out = Self::drive_multi_tenant(&mt, strategy, &mut admin, |_| {
                            SessionRecorder::new(shared.clone(), sink.clone())
                        });
                        drop(admin);
                        out
                    }
                    None => {
                        let mut admin = shared.clone();
                        let out =
                            Self::drive_multi_tenant(&mt, strategy, &mut admin, |_| shared.clone());
                        drop(admin);
                        out
                    }
                };
                let service = shared
                    .into_inner()
                    .unwrap_or_else(|_| panic!("all tenant endpoints dropped with their sims"));
                Self::assemble_report(&mt, runs, meta, service)
            }
            Transport::Loopback => {
                let handle = Server::spawn_loopback(service).expect("bind loopback server");
                let (runs, meta) = match self.record {
                    Some(sink) => {
                        let mut admin = SessionRecorder::new(
                            RemoteService::connect_with(handle.addr(), self.codec)
                                .expect("connect to loopback server"),
                            sink.clone(),
                        );
                        let out = Self::drive_multi_tenant(&mt, strategy, &mut admin, |i| {
                            SessionRecorder::new(
                                RemoteService::connect_with(handle.addr(), self.codec)
                                    .unwrap_or_else(|e| panic!("connect tenant {i}: {e}")),
                                sink.clone(),
                            )
                        });
                        drop(admin);
                        out
                    }
                    None => {
                        let mut admin = RemoteService::connect_with(handle.addr(), self.codec)
                            .expect("connect to loopback server");
                        let out = Self::drive_multi_tenant(&mt, strategy, &mut admin, |i| {
                            RemoteService::connect_with(handle.addr(), self.codec)
                                .unwrap_or_else(|e| panic!("connect tenant {i}: {e}"))
                        });
                        drop(admin);
                        out
                    }
                };
                Self::assemble_report(&mt, runs, meta, handle.into_service())
            }
        }
    }

    /// The sharded multi-tenant run: the shared service state is split
    /// across `shards` services under a rebalancing quota ledger —
    /// in-process behind a [`RoutedService`], over loopback behind a
    /// real [`ShardedServer`]. Bit-identical across the two transports
    /// at a fixed shard count (the driver issues one request at a time,
    /// so every shard sees the same arrival order either way).
    fn run_multi_tenant_sharded(
        mt: &MultiTenantScenario,
        strategy: StrategyCombo,
        template: SpeQuloS,
        shards: u32,
        transport: Transport,
        codec: Codec,
        record: Option<SessionSink>,
    ) -> MultiTenantReport {
        match transport {
            Transport::InProcess => {
                let shared = SharedRouted::new(RoutedService::new(
                    template,
                    shards,
                    1,
                    SHARD_REBALANCE_EVERY,
                ));
                let (runs, meta) = match record {
                    Some(sink) => {
                        let mut admin = SessionRecorder::new(shared.clone(), sink.clone());
                        let out = Self::drive_multi_tenant(mt, strategy, &mut admin, |_| {
                            SessionRecorder::new(shared.clone(), sink.clone())
                        });
                        drop(admin);
                        out
                    }
                    None => {
                        let mut admin = shared.clone();
                        let out =
                            Self::drive_multi_tenant(mt, strategy, &mut admin, |_| shared.clone());
                        drop(admin);
                        out
                    }
                };
                let services = shared
                    .into_inner()
                    .unwrap_or_else(|_| panic!("all tenant endpoints dropped with their sims"))
                    .into_services();
                Self::assemble_report_sharded(mt, runs, meta, services)
            }
            Transport::Loopback => {
                let shard_cfg = ShardConfig::deterministic(shards, SHARD_REBALANCE_EVERY);
                let handle = ShardedServer::spawn_loopback(template, shard_cfg)
                    .expect("bind sharded loopback server");
                let (runs, meta) = match record {
                    Some(sink) => {
                        let mut admin = SessionRecorder::new(
                            RemoteService::connect_with(handle.addr(), codec)
                                .expect("connect to sharded loopback server"),
                            sink.clone(),
                        );
                        let out = Self::drive_multi_tenant(mt, strategy, &mut admin, |i| {
                            SessionRecorder::new(
                                RemoteService::connect_with(handle.addr(), codec)
                                    .unwrap_or_else(|e| panic!("connect tenant {i}: {e}")),
                                sink.clone(),
                            )
                        });
                        drop(admin);
                        out
                    }
                    None => {
                        let mut admin = RemoteService::connect_with(handle.addr(), codec)
                            .expect("connect to sharded loopback server");
                        let out = Self::drive_multi_tenant(mt, strategy, &mut admin, |i| {
                            RemoteService::connect_with(handle.addr(), codec)
                                .unwrap_or_else(|e| panic!("connect tenant {i}: {e}"))
                        });
                        drop(admin);
                        out
                    }
                };
                Self::assemble_report_sharded(mt, runs, meta, handle.into_services())
            }
        }
    }

    /// [`Experiment::assemble_report`] over per-shard services: each
    /// tenant's QoS metrics come from the shard owning its BoT (ids are
    /// strided, so `bot mod N` names it), and the pool high-water mark
    /// is the *sum of per-shard peaks* — an upper bound on concurrent
    /// use, since quotas move between the peaks.
    fn assemble_report_sharded(
        mt: &MultiTenantScenario,
        runs: Vec<TenantRun>,
        meta: Vec<TenantMeta>,
        mut services: Vec<SpeQuloS>,
    ) -> MultiTenantReport {
        let n = services.len() as u64;
        let mut tenants = Vec::with_capacity(runs.len());
        let mut events = 0u64;
        for (run, (i, user, offset, sc, credits, size)) in runs.into_iter().zip(meta) {
            events += run.result.events;
            let provisioned = if run.admitted { credits } else { 0.0 };
            let metrics = metrics_from(&sc, &run.result, provisioned, run.spent, size);
            let owner = &services[(run.bot.0 % n) as usize];
            tenants.push(TenantOutcome {
                tenant: i,
                user,
                bot: run.bot,
                admitted: run.admitted,
                offset,
                metrics,
                qos: owner.tenant_metrics(run.bot),
            });
        }
        let peak = services
            .iter()
            .map(|s| s.pool().map(|p| p.peak_in_use()).unwrap_or_default())
            .sum();
        let extra_shards = services.split_off(1);
        let service = services
            .pop()
            .expect("into_shards yields at least one shard");
        MultiTenantReport {
            tenants,
            pool_capacity: mt.pool_capacity,
            peak_pool_in_use: peak,
            events,
            service,
            extra_shards,
        }
    }

    /// A fresh service assembled for this scenario: pooled when
    /// requested, billing at the scenario's monitoring tick.
    fn service_for(scenario: &Scenario, pool: Option<u32>) -> SpeQuloS {
        let mut builder = SpeQuloS::builder().tick(scenario.tick);
        if let Some(capacity) = pool {
            builder = builder.pool(capacity);
        }
        builder.build()
    }

    /// Opens the Fig. 3 session for one funded BoT on any endpoint —
    /// deposit → `registerQoS` → `orderQoS` — and returns the assigned
    /// BoT id.
    fn open_session<S: SpqService>(
        endpoint: &mut S,
        user: UserId,
        env: &str,
        size: u32,
        credits: f64,
        strategy: StrategyCombo,
        now: SimTime,
    ) -> BotId {
        match endpoint.handle(Request::Deposit { user, credits }, now) {
            Response::Deposited { .. } => {}
            other => panic!("deposit refused: {other:?}"),
        }
        let bot = match endpoint.handle(
            Request::RegisterQos {
                user,
                env: env.to_string(),
                size,
            },
            now,
        ) {
            Response::Registered { bot } => bot,
            other => panic!("registration refused: {other:?}"),
        };
        match endpoint.handle(
            Request::OrderQos {
                bot,
                credits,
                strategy: Some(strategy),
            },
            now,
        ) {
            Response::Ordered { .. } => {}
            other => panic!("freshly deposited credits must cover the order: {other:?}"),
        }
        bot
    }

    /// The single-tenant QoS run against an arbitrary endpoint.
    fn drive_qos<S: SpqService>(scenario: &Scenario, mut endpoint: S) -> (ExecutionMetrics, S) {
        let strategy = scenario
            .strategy
            .expect("a QoS experiment requires a strategy on the scenario");
        let bot = generate(scenario.class, BotId(0), scenario.seed);
        let dci = scenario.preset.spec().build(scenario.seed, scenario.scale);

        // Credits worth `credit_fraction` of the BoT workload (§4.1.3).
        let credits = scenario.credit_fraction * bot.workload_cpu_hours() * CREDITS_PER_CPU_HOUR;
        let user = UserId(0);
        let bot_id = Self::open_session(
            &mut endpoint,
            user,
            &scenario.env(),
            bot.size() as u32,
            credits,
            strategy,
            SimTime::ZERO,
        );

        let hook = SpqHook::new(endpoint, bot_id);
        let sim = GridSim::new(dci, &bot, scenario.sim_config(), scenario.seed, hook);
        let (result, hook) = sim.run();
        let spent = hook.spent();
        let metrics = metrics_from(scenario, &result, credits, spent, bot.size() as u32);
        (metrics, hook.into_service())
    }

    /// Sets up and runs all tenant simulations against per-tenant
    /// endpoints (`connect`), registering each tenant through `admin`
    /// first. Endpoints are dropped before returning, so a shared
    /// in-process service can be unwrapped by the caller.
    fn drive_multi_tenant<A: SpqService, E: SpqService>(
        mt: &MultiTenantScenario,
        strategy: StrategyCombo,
        admin: &mut A,
        mut connect: impl FnMut(u32) -> E,
    ) -> (Vec<TenantRun>, Vec<TenantMeta>) {
        let offsets = mt.arrivals.offsets(mt.tenants);
        let mut sims = Vec::with_capacity(mt.tenants as usize);
        let mut meta = Vec::with_capacity(mt.tenants as usize);
        for i in 0..mt.tenants {
            let sc = mt.tenant_scenario(i);
            let mut bot = generate(sc.class, BotId(0), sc.seed);
            let offset = offsets[i as usize];
            for task in &mut bot.tasks {
                task.arrival += offset;
            }
            let dci = sc.preset.spec().build(sc.seed, sc.scale);
            let credits = sc.credit_fraction * bot.workload_cpu_hours() * CREDITS_PER_CPU_HOUR;
            let user = UserId(u64::from(i));
            let at = SimTime::ZERO + offset;
            match admin.handle(Request::Deposit { user, credits }, at) {
                Response::Deposited { .. } => {}
                other => panic!("tenant {i} deposit refused: {other:?}"),
            }
            let bot_id = match admin.handle(
                Request::RegisterQos {
                    user,
                    env: sc.env(),
                    size: bot.size() as u32,
                },
                at,
            ) {
                Response::Registered { bot } => bot,
                other => panic!("tenant {i} registration refused: {other:?}"),
            };
            // The order itself is deferred to the tenant's arrival tick —
            // placed by the hook, through the tenant's own endpoint.
            let hook = SharedSpqHook::new(connect(i), bot_id, at, credits, strategy);
            sims.push(GridSim::new(dci, &bot, sc.sim_config(), sc.seed, hook));
            meta.push((i, user, offset, sc, credits, bot.size() as u32));
        }
        let runs = run_many(sims)
            .into_iter()
            .map(|(result, hook)| TenantRun {
                result,
                bot: hook.bot(),
                admitted: hook.admitted().unwrap_or(false),
                spent: hook.spent(),
            })
            .collect();
        (runs, meta)
    }

    /// Folds tenant runs and the recovered service into the report.
    fn assemble_report(
        mt: &MultiTenantScenario,
        runs: Vec<TenantRun>,
        meta: Vec<TenantMeta>,
        service: SpeQuloS,
    ) -> MultiTenantReport {
        let mut tenants = Vec::with_capacity(runs.len());
        let mut events = 0u64;
        for (run, (i, user, offset, sc, credits, size)) in runs.into_iter().zip(meta) {
            events += run.result.events;
            let provisioned = if run.admitted { credits } else { 0.0 };
            let metrics = metrics_from(&sc, &run.result, provisioned, run.spent, size);
            tenants.push(TenantOutcome {
                tenant: i,
                user,
                bot: run.bot,
                admitted: run.admitted,
                offset,
                metrics,
                qos: service.tenant_metrics(run.bot),
            });
        }
        let peak = service.pool().map(|p| p.peak_in_use()).unwrap_or_default();
        MultiTenantReport {
            tenants,
            pool_capacity: mt.pool_capacity,
            peak_pool_in_use: peak,
            events,
            service,
            extra_shards: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MwKind;
    use betrace::Preset;
    use botwork::BotClass;
    use spequlos::StrategyCombo;

    fn quick_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, seed);
        s.scale = 0.5;
        s
    }

    #[test]
    fn baseline_completes_and_uses_no_cloud() {
        let m = Experiment::new(quick_scenario(1)).run_baseline();
        assert!(m.completed);
        assert_eq!(m.cloud.workers_started, 0);
        assert_eq!(m.credits_spent, 0.0);
        assert!(m.completion_secs > 0.0);
        assert_eq!(m.env, "g5klyo/XWHEP/BIG");
    }

    #[test]
    fn qos_run_bills_credits_within_provision() {
        let sc = quick_scenario(2).with_strategy(StrategyCombo::paper_default());
        let env = sc.env();
        let (m, service) = Experiment::new(sc).run_qos();
        assert!(m.completed);
        assert!(m.credits_provisioned > 0.0);
        assert!(m.credits_spent <= m.credits_provisioned + 1e-9);
        // The service archived the execution for future predictions.
        assert_eq!(service.info().history(&env).len(), 1);
    }

    #[test]
    fn run_infers_the_mode() {
        let base = Experiment::new(quick_scenario(3)).run();
        assert!(matches!(base, Outcome::Baseline(_)));
        let sc = quick_scenario(3).with_strategy(StrategyCombo::paper_default());
        let qos = Experiment::new(sc.clone()).run();
        assert!(matches!(qos, Outcome::Qos { .. }));
        let paired = Experiment::new(sc.clone()).paired().run();
        assert!(matches!(paired, Outcome::Paired(_)));
        let mt = Experiment::new(sc).tenants(2).pool(8).run();
        assert!(matches!(mt, Outcome::MultiTenant(_)));
    }

    #[test]
    fn paired_run_baseline_not_slower_much() {
        // SpeQuloS must never make the execution dramatically worse; on a
        // churny trace it should usually help.
        let sc = quick_scenario(3).with_strategy(StrategyCombo::paper_default());
        let p = Experiment::new(sc).paired().run_paired();
        assert!(p.baseline.completed && p.speq.completed);
        assert!(
            p.speq.completion_secs <= p.baseline.completion_secs * 1.05,
            "speq {} vs baseline {}",
            p.speq.completion_secs,
            p.baseline.completion_secs
        );
        if let Some(tre) = p.tre {
            assert!(tre <= 1.0);
        }
    }

    #[test]
    fn multi_tenant_run_is_deterministic() {
        let base = quick_scenario(7).with_strategy(StrategyCombo::paper_default());
        let exp = Experiment::new(base).tenants(3).pool(6);
        let a = exp.clone().run_multi_tenant();
        let b = exp.run_multi_tenant();
        assert_eq!(a.events, b.events);
        assert_eq!(a.peak_pool_in_use, b.peak_pool_in_use);
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.metrics.completion_secs, tb.metrics.completion_secs);
            assert_eq!(ta.metrics.credits_spent, tb.metrics.credits_spent);
            assert_eq!(ta.qos, tb.qos);
        }
    }

    #[test]
    fn single_tenant_pool_run_matches_unpooled_run_when_uncontended() {
        // One tenant over a pool far larger than any request: arbitration
        // must be invisible — the execution equals the plain SpeQuloS run.
        let sc = quick_scenario(5).with_strategy(StrategyCombo::paper_default());
        let (solo, _) = Experiment::new(sc.clone()).run_qos();
        let report = Experiment::new(sc)
            .tenants(1)
            .pool(10_000)
            .run_multi_tenant();
        let t = &report.tenants[0];
        assert!(t.admitted);
        assert_eq!(t.metrics.completion_secs, solo.completion_secs);
        assert_eq!(t.metrics.events, solo.events);
        assert_eq!(t.metrics.credits_spent, solo.credits_spent);
        assert_eq!(t.metrics.cloud, solo.cloud);
        assert_eq!(t.qos.denied, 0);
    }

    #[test]
    fn paired_runs_share_the_pre_trigger_trajectory() {
        // Same seed ⇒ identical completion curve up to (shortly before)
        // the trigger point: compare tc(0.5) of both runs.
        let sc = quick_scenario(4).with_strategy(StrategyCombo::paper_default());
        let p = Experiment::new(sc).paired().run_paired();
        let b = p.baseline.tc(0.5).expect("baseline reaches 50%");
        let s = p.speq.tc(0.5).expect("speq reaches 50%");
        assert_eq!(b, s, "pre-trigger trajectories must match");
    }

    #[test]
    fn service_state_carries_across_runs() {
        let sc = quick_scenario(6).with_strategy(StrategyCombo::paper_default());
        let env = sc.env();
        let (_, service) = Experiment::new(sc.clone()).run_qos();
        let mut sc2 = sc;
        sc2.seed = 60;
        let (_, service) = Experiment::new(sc2).service(service).run_qos();
        assert_eq!(
            service.info().history(&env).len(),
            2,
            "archive accumulates across .service() chaining"
        );
    }

    #[test]
    fn service_dyn_drives_any_endpoint_to_the_same_result() {
        // The same scenario through the typed path and through a
        // `&mut dyn SpqService` must agree exactly.
        let sc = quick_scenario(8).with_strategy(StrategyCombo::paper_default());
        let (typed, _) = Experiment::new(sc.clone()).run_qos();
        let mut endpoint = SpeQuloS::builder().tick(sc.tick).build();
        let dynamic = Experiment::new(sc).service_dyn(&mut endpoint);
        assert_eq!(typed.completion_secs, dynamic.completion_secs);
        assert_eq!(typed.events, dynamic.events);
        assert_eq!(typed.credits_spent, dynamic.credits_spent);
        assert_eq!(typed.cloud, dynamic.cloud);
    }

    #[test]
    fn loopback_qos_run_is_bit_identical_to_in_process() {
        let sc = quick_scenario(9).with_strategy(StrategyCombo::paper_default());
        let (local, local_svc) = Experiment::new(sc.clone()).run_qos();
        let (remote, remote_svc) = Experiment::new(sc).loopback().run_qos();
        assert_eq!(local.completion_secs, remote.completion_secs);
        assert_eq!(local.events, remote.events);
        assert_eq!(local.credits_spent, remote.credits_spent);
        assert_eq!(local.cloud, remote.cloud);
        assert_eq!(local_svc.log(), remote_svc.log(), "same protocol log");
    }

    #[test]
    fn loopback_multi_tenant_is_bit_identical_to_in_process() {
        let base = quick_scenario(10).with_strategy(StrategyCombo::paper_default());
        let exp = Experiment::new(base).tenants(2).pool(4);
        let local = exp.clone().run_multi_tenant();
        let remote = exp.loopback().run_multi_tenant();
        assert_eq!(local.events, remote.events);
        assert_eq!(local.peak_pool_in_use, remote.peak_pool_in_use);
        assert_eq!(local.service.log(), remote.service.log());
        for (a, b) in local.tenants.iter().zip(&remote.tenants) {
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.metrics.completion_secs, b.metrics.completion_secs);
            assert_eq!(a.metrics.credits_spent, b.metrics.credits_spent);
            assert_eq!(a.qos, b.qos);
        }
    }
}
