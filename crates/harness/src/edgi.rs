//! EDGI-like composite deployment (paper §5, Fig. 8, Table 5).
//!
//! The production European Desktop Grid Infrastructure cannot be
//! reproduced, so this scenario assembles its *shape* from the substrates
//! (DESIGN.md §3): two XtremWeb-HEP desktop grids — `XW@LRI` harvesting a
//! Grid'5000-like best-effort cluster backed by an Amazon-EC2-like cloud,
//! and `XW@LAL` running on a campus desktop grid backed by a
//! StratusLab-like cloud — with part of the LAL workload arriving through
//! the 3G-Bridge from an EGI-like grid. One SpeQuloS service instance
//! supports both DGs and both clouds, as in the real deployment.

use crate::runner::SpqHook;
use crate::scenario::{MwKind, Scenario};
use betrace::Preset;
use botwork::BotClass;
use dgrid::{Origin, ThreeGBridge};
use simcore::SimTime;
use spequlos::{SpeQuloS, StrategyCombo};
use unicloud::{CloudDriver, ProviderSpec};

/// Per-infrastructure counters, mirroring Table 5.
#[derive(Clone, Debug, Default)]
pub struct EdgiReport {
    /// Tasks executed on the XW@LAL desktop grid (first completions by
    /// BE-DCI workers).
    pub lal_tasks: u64,
    /// Tasks executed on the XW@LRI best-effort grid.
    pub lri_tasks: u64,
    /// Tasks that entered through the EGI 3G-Bridge.
    pub egi_tasks: u64,
    /// Task instances assigned by SpeQuloS to the StratusLab cloud.
    pub stratuslab_tasks: u64,
    /// Task instances assigned by SpeQuloS to the Amazon EC2 cloud.
    pub ec2_tasks: u64,
    /// Cloud CPU·hours consumed on StratusLab.
    pub stratuslab_cpu_hours: f64,
    /// Cloud CPU·hours consumed on EC2.
    pub ec2_cpu_hours: f64,
    /// Per-BoT execution summaries: (label, completed, completion time s,
    /// credits spent).
    pub bots: Vec<(String, bool, f64, f64)>,
}

/// A QoS hook that mirrors cloud commands into a [`CloudDriver`], so the
/// EDGI report can account instances per provider exactly as the real
/// deployment's libcloud layer would.
struct MeteredHook {
    inner: SpqHook,
    driver: CloudDriver,
}

impl dgrid::QosHook for MeteredHook {
    fn on_tick(&mut self, view: &dgrid::TickView) -> dgrid::CloudCommand {
        let cmd = self.inner.on_tick(view);
        match cmd {
            dgrid::CloudCommand::Start(n) => {
                for _ in 0..n {
                    // Capacity errors fall back to fewer mirrored
                    // instances; the simulation itself is authoritative.
                    let _ = self.driver.start_instance(view.now);
                }
            }
            dgrid::CloudCommand::StopAll => {
                self.driver.stop_all(view.now);
            }
            dgrid::CloudCommand::None => {}
        }
        cmd
    }

    fn on_finish(&mut self, now: SimTime) {
        self.driver.stop_all(now);
        self.inner.on_finish(now);
    }
}

/// Runs the EDGI composite scenario: `bots_per_dg` BoTs through each
/// desktop grid, alternating classes, with a single shared SpeQuloS
/// service. `scale` shrinks the infrastructures for quick runs.
pub fn run_edgi(seed: u64, bots_per_dg: u32, scale: f64) -> EdgiReport {
    let mut report = EdgiReport::default();
    let mut service = SpeQuloS::new();
    let classes = [BotClass::Big, BotClass::Random, BotClass::Small];
    let strategy = StrategyCombo::paper_default();

    for i in 0..bots_per_dg {
        let class = classes[i as usize % classes.len()];

        // --- XW@LRI: Grid'5000 best-effort + EC2 ------------------------
        let mut sc = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, class, seed + i as u64)
            .with_strategy(strategy);
        sc.scale = scale;
        let (metrics, svc, driver) =
            run_metered(&sc, service, CloudDriver::new(ProviderSpec::amazon_ec2()));
        service = svc;
        // Task ids are BoT-scoped, so provenance uses one ledger per BoT.
        let bot = crate::runner::bot_of(&sc);
        let mut ledger = ThreeGBridge::new();
        ledger.register_bot(&bot, Origin::Native);
        report.lri_tasks += (metrics.bot_size - metrics.cloud.tasks_completed) as u64;
        report.ec2_tasks += metrics.cloud.tasks_assigned as u64;
        report.ec2_cpu_hours += driver.cpu_hours(SimTime::MAX);
        report.bots.push((
            format!("XW@LRI/{}/seed{}", class.spec().name, sc.seed),
            metrics.completed,
            metrics.completion_secs,
            metrics.credits_spent,
        ));

        // --- XW@LAL: campus DG + StratusLab, fed partly through EGI -----
        let mut sc = Scenario::new(
            Preset::NotreDame,
            MwKind::Xwhep,
            class,
            seed + 1000 + i as u64,
        )
        .with_strategy(strategy);
        sc.scale = scale;
        let (metrics, svc, driver) =
            run_metered(&sc, service, CloudDriver::new(ProviderSpec::stratuslab()));
        service = svc;
        let bot = crate::runner::bot_of(&sc);
        // Every third LAL BoT arrives through the EGI bridge, as EDGI's
        // 3G-Bridge redirects a minority of grid submissions to the DG
        // (Table 5: EGI tasks are a small share of XW@LAL's workload).
        let origin = if i % 3 == 0 {
            Origin::Bridged { grid: "EGI" }
        } else {
            Origin::Native
        };
        let mut ledger = ThreeGBridge::new();
        ledger.register_bot(&bot, origin);
        report.egi_tasks += ledger.bridged_count();
        report.lal_tasks += (metrics.bot_size - metrics.cloud.tasks_completed) as u64;
        report.stratuslab_tasks += metrics.cloud.tasks_assigned as u64;
        report.stratuslab_cpu_hours += driver.cpu_hours(SimTime::MAX);
        report.bots.push((
            format!("XW@LAL/{}/seed{}", class.spec().name, sc.seed),
            metrics.completed,
            metrics.completion_secs,
            metrics.credits_spent,
        ));
    }
    report
}

/// A single QoS run (`Experiment::run_qos` in miniature), but with the
/// cloud commands mirrored into a provider driver for per-cloud
/// accounting.
fn run_metered(
    scenario: &Scenario,
    mut service: SpeQuloS,
    driver: CloudDriver,
) -> (crate::runner::ExecutionMetrics, SpeQuloS, CloudDriver) {
    use spequlos::{UserId, CREDITS_PER_CPU_HOUR};

    let strategy = scenario.strategy.expect("EDGI scenarios use QoS");
    let bot = crate::runner::bot_of(scenario);
    let dci = scenario.preset.spec().build(scenario.seed, scenario.scale);
    let credits = scenario.credit_fraction * bot.workload_cpu_hours() * CREDITS_PER_CPU_HOUR;
    let user = UserId(0);
    // Protocol billing runs at the service's clock granularity — the
    // shared EDGI service must agree with the scenarios it serves.
    assert_eq!(
        service.tick_granularity(),
        scenario.tick,
        "EDGI service and scenario disagree on the monitoring tick"
    );
    service.credits.deposit(user, credits);
    let bot_id = service.register_qos(&scenario.env(), bot.size() as u32, user, SimTime::ZERO);
    service
        .order_qos(bot_id, credits, strategy, SimTime::ZERO)
        .expect("credits just deposited");
    let hook = MeteredHook {
        inner: SpqHook::new(service, bot_id),
        driver,
    };
    let sim = dgrid::GridSim::new(dci, &bot, scenario.sim_config(), scenario.seed, hook);
    let (result, hook) = sim.run();
    let service = hook.inner.into_service();
    let spent = service.credits.spent(bot_id);
    let completion = result
        .completion_time
        .unwrap_or(SimTime::ZERO + scenario.max_sim_time);
    let metrics = crate::runner::ExecutionMetrics {
        env: scenario.env(),
        strategy: scenario.strategy,
        seed: scenario.seed,
        completed: result.completed,
        completion_secs: completion.as_secs_f64(),
        tail: result.completion_time.and_then(|t| {
            spequlos::tail_stats(&result.completed_series, &result.completion_times, t)
        }),
        credits_provisioned: credits,
        credits_spent: spent,
        cloud: result.cloud,
        events: result.events,
        completed_series: result.completed_series,
        bot_size: bot.size() as u32,
        cloud_work_fraction: result.nops_done_cloud / result.nops_done.max(1.0),
    };
    (metrics, service, hook.driver)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edgi_scenario_produces_consistent_counts() {
        let report = run_edgi(42, 2, 0.3);
        assert_eq!(report.bots.len(), 4, "2 BoTs per DG × 2 DGs");
        for (label, completed, secs, _) in &report.bots {
            assert!(completed, "{label} must complete ({secs}s)");
        }
        assert!(report.lri_tasks > 0);
        assert!(report.lal_tasks > 0);
        // Half the LAL BoTs are bridged.
        assert!(report.egi_tasks > 0);
        assert!(report.egi_tasks <= report.lal_tasks + report.stratuslab_tasks);
    }
}
