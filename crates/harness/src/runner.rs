//! Execution plumbing shared by every run mode: the QoS hooks bridging
//! the simulator to a [`SpeQuloS`] service, the per-run metric types, and
//! thin deprecated shims keeping the pre-[`Experiment`] free functions
//! (`run_baseline` & co.) compiling.
//!
//! New code should drive runs through [`Experiment`]
//! (`Experiment::new(scenario).paired().run()`); the free functions here
//! delegate to it one-to-one.

use crate::experiment::Experiment;
use crate::scenario::{MultiTenantScenario, Scenario};
use botwork::{generate, Bot, BotId};
use dgrid::{CloudCommand, CloudUsage, QosHook, TickView};
use simcore::{SimDuration, SimTime, TimeSeries};
use spequlos::{
    tail_stats, BotProgress, CloudAction, SpeQuloS, StrategyCombo, TailStats, TenantMetrics, UserId,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Adapter: drives a [`SpeQuloS`] service from the simulator's QoS hook,
/// translating the simulator's tick view into the service's progress
/// snapshots and the service's actions into simulator commands.
pub struct SpqHook {
    /// The service (recovered after the run for billing/α state).
    pub spq: SpeQuloS,
    bot: BotId,
    tick_hours: f64,
    /// Ask the Oracle for a completion-time prediction once this
    /// completion ratio is reached (the `getQoSInformation` arrow of
    /// Fig. 3; also what Table 4 scores).
    predict_at: Option<f64>,
    predicted: bool,
}

impl SpqHook {
    /// Wraps a service around one registered BoT; a prediction is
    /// requested once at 50% completion, as in the paper's evaluation.
    pub fn new(spq: SpeQuloS, bot: BotId, tick_hours: f64) -> Self {
        SpqHook {
            spq,
            bot,
            tick_hours,
            predict_at: Some(0.5),
            predicted: false,
        }
    }
}

impl QosHook for SpqHook {
    fn on_tick(&mut self, view: &TickView) -> CloudCommand {
        let progress = BotProgress {
            now: view.now,
            size: view.bot_size,
            completed: view.completed,
            dispatched: view.dispatched,
            queued: view.ready,
            running: view.running,
            cloud_running: view.cloud_running,
        };
        if let Some(ratio) = self.predict_at {
            if !self.predicted && progress.completion_ratio() >= ratio {
                self.predicted = true;
                let _ = self.spq.predict(self.bot, view.now);
            }
        }
        match self.spq.on_progress(self.bot, &progress, self.tick_hours) {
            CloudAction::None => CloudCommand::None,
            CloudAction::Start(n) => CloudCommand::Start(n),
            CloudAction::StopAll => CloudCommand::StopAll,
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        self.spq.on_complete(self.bot, now);
    }
}

/// Everything measured about one executed scenario.
#[derive(Clone, Debug)]
pub struct ExecutionMetrics {
    /// Environment label (`trace/middleware/class`).
    pub env: String,
    /// Strategy used (`None` = baseline).
    pub strategy: Option<StrategyCombo>,
    /// Seed.
    pub seed: u64,
    /// Whether the BoT completed within the simulation cap.
    pub completed: bool,
    /// Completion time in seconds (cap value if not completed).
    pub completion_secs: f64,
    /// Tail statistics (requires completion past the 90% mark).
    pub tail: Option<TailStats>,
    /// Credits provisioned for the run (0 for baselines).
    pub credits_provisioned: f64,
    /// Credits actually spent.
    pub credits_spent: f64,
    /// Cloud usage counters.
    pub cloud: CloudUsage,
    /// Simulation events processed.
    pub events: u64,
    /// Completed-count time series (for `tc(x)` and predictions).
    pub completed_series: TimeSeries,
    /// BoT size.
    pub bot_size: u32,
    /// Fraction of completed work executed in the cloud.
    pub cloud_work_fraction: f64,
}

impl ExecutionMetrics {
    /// `tc(x)`: time at which fraction `x` of the BoT was complete.
    pub fn tc(&self, x: f64) -> Option<SimTime> {
        self.completed_series
            .time_to_reach(x * self.bot_size as f64)
    }
}

/// Generates the BoT of a scenario (deterministic in `(class, seed)`).
pub fn bot_of(scenario: &Scenario) -> Bot {
    generate(scenario.class, BotId(0), scenario.seed)
}

pub(crate) fn metrics_from(
    scenario: &Scenario,
    result: &dgrid::RunResult,
    credits_provisioned: f64,
    credits_spent: f64,
    bot_size: u32,
) -> ExecutionMetrics {
    let completion = result
        .completion_time
        .unwrap_or(SimTime::ZERO + scenario.max_sim_time);
    let tail = result
        .completion_time
        .and_then(|t| tail_stats(&result.completed_series, &result.completion_times, t));
    ExecutionMetrics {
        env: scenario.env(),
        strategy: scenario.strategy,
        seed: scenario.seed,
        completed: result.completed,
        completion_secs: completion.as_secs_f64(),
        tail,
        credits_provisioned,
        credits_spent,
        cloud: result.cloud,
        events: result.events,
        completed_series: result.completed_series.clone(),
        bot_size,
        cloud_work_fraction: result.cloud_work_fraction(),
    }
}

/// Runs the scenario without SpeQuloS (the paper's baseline).
#[deprecated(
    since = "0.1.0",
    note = "use `Experiment::new(scenario).run_baseline()`"
)]
pub fn run_baseline(scenario: &Scenario) -> ExecutionMetrics {
    Experiment::new(scenario.clone()).run_baseline()
}

/// Runs the scenario with SpeQuloS using `service` (pass a fresh service,
/// or one carrying history/credit state across runs). Returns the metrics
/// and the service back.
///
/// # Panics
/// Panics if the scenario has no strategy.
#[deprecated(
    since = "0.1.0",
    note = "use `Experiment::new(scenario).service(service).run_qos()`"
)]
pub fn run_with_spequlos(scenario: &Scenario, service: SpeQuloS) -> (ExecutionMetrics, SpeQuloS) {
    Experiment::new(scenario.clone()).service(service).run_qos()
}

/// A seed-paired baseline + SpeQuloS comparison (§4.2.1: "using the same
/// seed value allows a fair comparison").
#[derive(Clone, Debug)]
pub struct PairedRun {
    /// The run without SpeQuloS.
    pub baseline: ExecutionMetrics,
    /// The run with SpeQuloS.
    pub speq: ExecutionMetrics,
    /// Tail Removal Efficiency (`None` if the baseline had no tail or
    /// either run did not complete).
    pub tre: Option<f64>,
    /// Completion-time speed-up `t_baseline / t_speq`.
    pub speedup: f64,
}

/// Runs the same scenario with and without SpeQuloS on the same seed.
///
/// # Panics
/// Panics if the scenario has no strategy.
#[deprecated(
    since = "0.1.0",
    note = "use `Experiment::new(scenario).paired().run_paired()`"
)]
pub fn run_paired(scenario: &Scenario) -> PairedRun {
    Experiment::new(scenario.clone()).paired().run_paired()
}

/// QoS adapter for one tenant of a shared service: like [`SpqHook`] but
/// holding the service behind `Rc<RefCell>` so every tenant's simulation
/// drives the *same* instance. The BoT is registered up front (at its
/// submission time, so the Oracle's elapsed-time estimates are anchored
/// correctly), but the `orderQoS` call is deferred to the first
/// monitoring tick at or after the tenant's arrival — admission control
/// therefore sees the pool as it is *then*, so an order rejected at a
/// busy moment differs from one arriving after earlier tenants completed
/// and freed their slots.
pub struct SharedSpqHook {
    spq: Rc<RefCell<SpeQuloS>>,
    bot: BotId,
    submit_at: SimTime,
    credits: f64,
    strategy: StrategyCombo,
    tick_hours: f64,
    /// Admission-control verdict, once the order was placed.
    admitted: Option<bool>,
}

impl SharedSpqHook {
    /// A tenant whose (already registered) BoT `bot` arrives at
    /// `submit_at`, ordering `credits` of QoS under `strategy`.
    pub fn new(
        spq: Rc<RefCell<SpeQuloS>>,
        bot: BotId,
        submit_at: SimTime,
        credits: f64,
        strategy: StrategyCombo,
        tick_hours: f64,
    ) -> Self {
        SharedSpqHook {
            spq,
            bot,
            submit_at,
            credits,
            strategy,
            tick_hours,
            admitted: None,
        }
    }

    /// The tenant's BoT id.
    pub fn bot(&self) -> BotId {
        self.bot
    }

    /// Whether the QoS order passed admission control (`None` before the
    /// order was placed).
    pub fn admitted(&self) -> Option<bool> {
        self.admitted
    }
}

impl QosHook for SharedSpqHook {
    fn on_tick(&mut self, view: &TickView) -> CloudCommand {
        if self.admitted.is_none() {
            if view.now < self.submit_at {
                return CloudCommand::None; // tenant has not arrived yet
            }
            let verdict = self
                .spq
                .borrow_mut()
                .order_qos(self.bot, self.credits, self.strategy, view.now)
                .is_ok();
            self.admitted = Some(verdict);
        }
        let progress = BotProgress {
            now: view.now,
            size: view.bot_size,
            completed: view.completed,
            dispatched: view.dispatched,
            queued: view.ready,
            running: view.running,
            cloud_running: view.cloud_running,
        };
        match self
            .spq
            .borrow_mut()
            .on_progress(self.bot, &progress, self.tick_hours)
        {
            CloudAction::None => CloudCommand::None,
            CloudAction::Start(n) => CloudCommand::Start(n),
            CloudAction::StopAll => CloudCommand::StopAll,
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        self.spq.borrow_mut().on_complete(self.bot, now);
    }
}

/// Everything measured about one tenant of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Tenant index (0-based).
    pub tenant: u32,
    /// The tenant's user account.
    pub user: UserId,
    /// The BoT id the service assigned.
    pub bot: BotId,
    /// Whether the QoS order passed admission control.
    pub admitted: bool,
    /// Submission offset on the shared clock.
    pub offset: SimDuration,
    /// Per-execution metrics (same shape as single-tenant runs).
    pub metrics: ExecutionMetrics,
    /// The arbiter's per-tenant counters.
    pub qos: TenantMetrics,
}

/// Result of a [`run_multi_tenant`] execution.
#[derive(Clone, Debug)]
pub struct MultiTenantReport {
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Configured pool capacity.
    pub pool_capacity: u32,
    /// High-water mark of leased cloud workers across all tenants — by
    /// construction never above `pool_capacity`.
    pub peak_pool_in_use: u32,
    /// Total simulation events across all tenants.
    pub events: u64,
    /// The final service state (credit accounts, archive, favors ledger).
    pub service: SpeQuloS,
}

impl MultiTenantReport {
    /// Tenants whose QoS order was admitted.
    pub fn admitted(&self) -> impl Iterator<Item = &TenantOutcome> {
        self.tenants.iter().filter(|t| t.admitted)
    }
}

/// Runs `mt.tenants` concurrent BoT executions against one shared
/// SpeQuloS service with a cloud-worker pool of `mt.pool_capacity`
/// (see [`MultiTenantScenario`]). Deterministic: the same scenario
/// reproduces the same report bit-for-bit.
///
/// # Panics
/// Panics if the base scenario has no strategy.
#[deprecated(
    since = "0.1.0",
    note = "use `Experiment::new(base).tenants(n).pool(cap).run_multi_tenant()`"
)]
pub fn run_multi_tenant(mt: &MultiTenantScenario) -> MultiTenantReport {
    Experiment::from_multi_tenant(mt.clone()).run_multi_tenant()
}

#[cfg(test)]
mod tests {
    // The deprecated free functions must keep producing exactly what the
    // Experiment builder produces until they are removed.
    #![allow(deprecated)]

    use super::*;
    use crate::experiment::Experiment;
    use crate::scenario::MwKind;
    use betrace::Preset;
    use botwork::BotClass;

    fn quick_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, seed);
        s.scale = 0.5;
        s
    }

    #[test]
    fn legacy_shims_match_the_experiment_builder() {
        let sc = quick_scenario(9).with_strategy(StrategyCombo::paper_default());

        let shim = run_baseline(&sc);
        let exp = Experiment::new(sc.clone()).run_baseline();
        assert_eq!(shim.completion_secs, exp.completion_secs);
        assert_eq!(shim.events, exp.events);

        let (shim, _) = run_with_spequlos(&sc, SpeQuloS::new());
        let (exp, _) = Experiment::new(sc.clone()).run_qos();
        assert_eq!(shim.completion_secs, exp.completion_secs);
        assert_eq!(shim.credits_spent, exp.credits_spent);

        let shim = run_paired(&sc);
        let exp = Experiment::new(sc.clone()).paired().run_paired();
        assert_eq!(shim.speedup, exp.speedup);
        assert_eq!(shim.tre, exp.tre);

        let mt = MultiTenantScenario::new(sc, 2, 6);
        let shim = run_multi_tenant(&mt);
        let exp = Experiment::from_multi_tenant(mt).run_multi_tenant();
        assert_eq!(shim.events, exp.events);
        assert_eq!(shim.peak_pool_in_use, exp.peak_pool_in_use);
    }
}
