//! Executes scenarios: baseline runs, SpeQuloS runs, the seed-paired
//! combination the Tail-Removal-Efficiency metric requires, and
//! multi-tenant runs in which N concurrent BoTs share one service, one
//! credit economy and one bounded cloud-worker pool.

use crate::scenario::{MultiTenantScenario, Scenario};
use botwork::{generate, Bot, BotId};
use dgrid::{run_many, CloudCommand, CloudUsage, GridSim, NoQos, QosHook, TickView};
use simcore::{SimDuration, SimTime, TimeSeries};
use spequlos::{
    tail_removal_efficiency, tail_stats, BotProgress, CloudAction, SpeQuloS, StrategyCombo,
    TailStats, TenantMetrics, UserId, CREDITS_PER_CPU_HOUR,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Adapter: drives a [`SpeQuloS`] service from the simulator's QoS hook,
/// translating the simulator's tick view into the service's progress
/// snapshots and the service's actions into simulator commands.
pub struct SpqHook {
    /// The service (recovered after the run for billing/α state).
    pub spq: SpeQuloS,
    bot: BotId,
    tick_hours: f64,
    /// Ask the Oracle for a completion-time prediction once this
    /// completion ratio is reached (the `getQoSInformation` arrow of
    /// Fig. 3; also what Table 4 scores).
    predict_at: Option<f64>,
    predicted: bool,
}

impl SpqHook {
    /// Wraps a service around one registered BoT; a prediction is
    /// requested once at 50% completion, as in the paper's evaluation.
    pub fn new(spq: SpeQuloS, bot: BotId, tick_hours: f64) -> Self {
        SpqHook {
            spq,
            bot,
            tick_hours,
            predict_at: Some(0.5),
            predicted: false,
        }
    }
}

impl QosHook for SpqHook {
    fn on_tick(&mut self, view: &TickView) -> CloudCommand {
        let progress = BotProgress {
            now: view.now,
            size: view.bot_size,
            completed: view.completed,
            dispatched: view.dispatched,
            queued: view.ready,
            running: view.running,
            cloud_running: view.cloud_running,
        };
        if let Some(ratio) = self.predict_at {
            if !self.predicted && progress.completion_ratio() >= ratio {
                self.predicted = true;
                let _ = self.spq.predict(self.bot, view.now);
            }
        }
        match self.spq.on_progress(self.bot, &progress, self.tick_hours) {
            CloudAction::None => CloudCommand::None,
            CloudAction::Start(n) => CloudCommand::Start(n),
            CloudAction::StopAll => CloudCommand::StopAll,
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        self.spq.on_complete(self.bot, now);
    }
}

/// Everything measured about one executed scenario.
#[derive(Clone, Debug)]
pub struct ExecutionMetrics {
    /// Environment label (`trace/middleware/class`).
    pub env: String,
    /// Strategy used (`None` = baseline).
    pub strategy: Option<StrategyCombo>,
    /// Seed.
    pub seed: u64,
    /// Whether the BoT completed within the simulation cap.
    pub completed: bool,
    /// Completion time in seconds (cap value if not completed).
    pub completion_secs: f64,
    /// Tail statistics (requires completion past the 90% mark).
    pub tail: Option<TailStats>,
    /// Credits provisioned for the run (0 for baselines).
    pub credits_provisioned: f64,
    /// Credits actually spent.
    pub credits_spent: f64,
    /// Cloud usage counters.
    pub cloud: CloudUsage,
    /// Simulation events processed.
    pub events: u64,
    /// Completed-count time series (for `tc(x)` and predictions).
    pub completed_series: TimeSeries,
    /// BoT size.
    pub bot_size: u32,
    /// Fraction of completed work executed in the cloud.
    pub cloud_work_fraction: f64,
}

impl ExecutionMetrics {
    /// `tc(x)`: time at which fraction `x` of the BoT was complete.
    pub fn tc(&self, x: f64) -> Option<SimTime> {
        self.completed_series
            .time_to_reach(x * self.bot_size as f64)
    }
}

/// Generates the BoT of a scenario (deterministic in `(class, seed)`).
pub fn bot_of(scenario: &Scenario) -> Bot {
    generate(scenario.class, BotId(0), scenario.seed)
}

fn metrics_from(
    scenario: &Scenario,
    result: &dgrid::RunResult,
    credits_provisioned: f64,
    credits_spent: f64,
    bot_size: u32,
) -> ExecutionMetrics {
    let completion = result
        .completion_time
        .unwrap_or(SimTime::ZERO + scenario.max_sim_time);
    let tail = result
        .completion_time
        .and_then(|t| tail_stats(&result.completed_series, &result.completion_times, t));
    ExecutionMetrics {
        env: scenario.env(),
        strategy: scenario.strategy,
        seed: scenario.seed,
        completed: result.completed,
        completion_secs: completion.as_secs_f64(),
        tail,
        credits_provisioned,
        credits_spent,
        cloud: result.cloud,
        events: result.events,
        completed_series: result.completed_series.clone(),
        bot_size,
        cloud_work_fraction: result.cloud_work_fraction(),
    }
}

/// Runs the scenario without SpeQuloS (the paper's baseline).
pub fn run_baseline(scenario: &Scenario) -> ExecutionMetrics {
    let bot = bot_of(scenario);
    let dci = scenario.preset.spec().build(scenario.seed, scenario.scale);
    let sim = GridSim::new(dci, &bot, scenario.sim_config(), scenario.seed, NoQos);
    let (result, _) = sim.run();
    metrics_from(scenario, &result, 0.0, 0.0, bot.size() as u32)
}

/// Runs the scenario with SpeQuloS using `service` (pass a fresh service,
/// or one carrying history/credit state across runs). Returns the metrics
/// and the service back.
///
/// # Panics
/// Panics if the scenario has no strategy.
pub fn run_with_spequlos(
    scenario: &Scenario,
    mut service: SpeQuloS,
) -> (ExecutionMetrics, SpeQuloS) {
    let strategy = scenario
        .strategy
        .expect("run_with_spequlos requires a strategy");
    let bot = bot_of(scenario);
    let dci = scenario.preset.spec().build(scenario.seed, scenario.scale);

    // Credits worth `credit_fraction` of the BoT workload (§4.1.3).
    let credits = scenario.credit_fraction * bot.workload_cpu_hours() * CREDITS_PER_CPU_HOUR;
    let user = UserId(0);
    service.credits.deposit(user, credits);
    let bot_id = service.register_qos(&scenario.env(), bot.size() as u32, user, SimTime::ZERO);
    service
        .order_qos(bot_id, credits, strategy, SimTime::ZERO)
        .expect("freshly deposited credits cover the order");

    let tick_hours = scenario.tick.as_hours_f64();
    let hook = SpqHook::new(service, bot_id, tick_hours);
    let sim = GridSim::new(dci, &bot, scenario.sim_config(), scenario.seed, hook);
    let (result, hook) = sim.run();
    let service = hook.spq;
    let spent = service.credits.spent(bot_id);
    let metrics = metrics_from(scenario, &result, credits, spent, bot.size() as u32);
    (metrics, service)
}

/// A seed-paired baseline + SpeQuloS comparison (§4.2.1: "using the same
/// seed value allows a fair comparison").
#[derive(Clone, Debug)]
pub struct PairedRun {
    /// The run without SpeQuloS.
    pub baseline: ExecutionMetrics,
    /// The run with SpeQuloS.
    pub speq: ExecutionMetrics,
    /// Tail Removal Efficiency (`None` if the baseline had no tail or
    /// either run did not complete).
    pub tre: Option<f64>,
    /// Completion-time speed-up `t_baseline / t_speq`.
    pub speedup: f64,
}

/// Runs the same scenario with and without SpeQuloS on the same seed.
///
/// # Panics
/// Panics if the scenario has no strategy.
pub fn run_paired(scenario: &Scenario) -> PairedRun {
    let mut base_sc = scenario.clone();
    base_sc.strategy = None;
    let baseline = run_baseline(&base_sc);
    let (speq, _service) = run_with_spequlos(scenario, SpeQuloS::new());
    let tre = match (&baseline.tail, baseline.completed, speq.completed) {
        (Some(tail), true, true) => tail_removal_efficiency(
            tail.ideal,
            SimTime::from_secs_f64(baseline.completion_secs),
            SimTime::from_secs_f64(speq.completion_secs),
        ),
        _ => None,
    };
    let speedup = if speq.completion_secs > 0.0 {
        baseline.completion_secs / speq.completion_secs
    } else {
        1.0
    };
    PairedRun {
        baseline,
        speq,
        tre,
        speedup,
    }
}

/// QoS adapter for one tenant of a shared service: like [`SpqHook`] but
/// holding the service behind `Rc<RefCell>` so every tenant's simulation
/// drives the *same* instance. The BoT is registered up front (at its
/// submission time, so the Oracle's elapsed-time estimates are anchored
/// correctly), but the `orderQoS` call is deferred to the first
/// monitoring tick at or after the tenant's arrival — admission control
/// therefore sees the pool as it is *then*, so an order rejected at a
/// busy moment differs from one arriving after earlier tenants completed
/// and freed their slots.
pub struct SharedSpqHook {
    spq: Rc<RefCell<SpeQuloS>>,
    bot: BotId,
    submit_at: SimTime,
    credits: f64,
    strategy: StrategyCombo,
    tick_hours: f64,
    /// Admission-control verdict, once the order was placed.
    admitted: Option<bool>,
}

impl SharedSpqHook {
    /// A tenant whose (already registered) BoT `bot` arrives at
    /// `submit_at`, ordering `credits` of QoS under `strategy`.
    pub fn new(
        spq: Rc<RefCell<SpeQuloS>>,
        bot: BotId,
        submit_at: SimTime,
        credits: f64,
        strategy: StrategyCombo,
        tick_hours: f64,
    ) -> Self {
        SharedSpqHook {
            spq,
            bot,
            submit_at,
            credits,
            strategy,
            tick_hours,
            admitted: None,
        }
    }

    /// The tenant's BoT id.
    pub fn bot(&self) -> BotId {
        self.bot
    }

    /// Whether the QoS order passed admission control (`None` before the
    /// order was placed).
    pub fn admitted(&self) -> Option<bool> {
        self.admitted
    }
}

impl QosHook for SharedSpqHook {
    fn on_tick(&mut self, view: &TickView) -> CloudCommand {
        if self.admitted.is_none() {
            if view.now < self.submit_at {
                return CloudCommand::None; // tenant has not arrived yet
            }
            let verdict = self
                .spq
                .borrow_mut()
                .order_qos(self.bot, self.credits, self.strategy, view.now)
                .is_ok();
            self.admitted = Some(verdict);
        }
        let progress = BotProgress {
            now: view.now,
            size: view.bot_size,
            completed: view.completed,
            dispatched: view.dispatched,
            queued: view.ready,
            running: view.running,
            cloud_running: view.cloud_running,
        };
        match self
            .spq
            .borrow_mut()
            .on_progress(self.bot, &progress, self.tick_hours)
        {
            CloudAction::None => CloudCommand::None,
            CloudAction::Start(n) => CloudCommand::Start(n),
            CloudAction::StopAll => CloudCommand::StopAll,
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        self.spq.borrow_mut().on_complete(self.bot, now);
    }
}

/// Everything measured about one tenant of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Tenant index (0-based).
    pub tenant: u32,
    /// The tenant's user account.
    pub user: UserId,
    /// The BoT id the service assigned.
    pub bot: BotId,
    /// Whether the QoS order passed admission control.
    pub admitted: bool,
    /// Submission offset on the shared clock.
    pub offset: SimDuration,
    /// Per-execution metrics (same shape as single-tenant runs).
    pub metrics: ExecutionMetrics,
    /// The arbiter's per-tenant counters.
    pub qos: TenantMetrics,
}

/// Result of a [`run_multi_tenant`] execution.
#[derive(Clone, Debug)]
pub struct MultiTenantReport {
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Configured pool capacity.
    pub pool_capacity: u32,
    /// High-water mark of leased cloud workers across all tenants — by
    /// construction never above `pool_capacity`.
    pub peak_pool_in_use: u32,
    /// Total simulation events across all tenants.
    pub events: u64,
    /// The final service state (credit accounts, archive, favors ledger).
    pub service: SpeQuloS,
}

impl MultiTenantReport {
    /// Tenants whose QoS order was admitted.
    pub fn admitted(&self) -> impl Iterator<Item = &TenantOutcome> {
        self.tenants.iter().filter(|t| t.admitted)
    }
}

/// Runs `mt.tenants` concurrent BoT executions against one shared
/// SpeQuloS service with a cloud-worker pool of `mt.pool_capacity`
/// (see [`MultiTenantScenario`]). Deterministic: the same scenario
/// reproduces the same report bit-for-bit.
///
/// # Panics
/// Panics if the base scenario has no strategy.
pub fn run_multi_tenant(mt: &MultiTenantScenario) -> MultiTenantReport {
    let strategy = mt
        .base
        .strategy
        .expect("run_multi_tenant requires a strategy");
    let offsets = mt.arrivals.offsets(mt.tenants);
    let spq = Rc::new(RefCell::new(SpeQuloS::with_pool(mt.pool_capacity)));

    let mut sims = Vec::with_capacity(mt.tenants as usize);
    let mut meta = Vec::with_capacity(mt.tenants as usize);
    for i in 0..mt.tenants {
        let sc = mt.tenant_scenario(i);
        let mut bot = bot_of(&sc);
        let offset = offsets[i as usize];
        for task in &mut bot.tasks {
            task.arrival += offset;
        }
        let dci = sc.preset.spec().build(sc.seed, sc.scale);
        let credits = sc.credit_fraction * bot.workload_cpu_hours() * CREDITS_PER_CPU_HOUR;
        let user = UserId(u64::from(i));
        let bot_id = {
            let mut service = spq.borrow_mut();
            service.credits.deposit(user, credits);
            service.register_qos(&sc.env(), bot.size() as u32, user, SimTime::ZERO + offset)
        };
        let hook = SharedSpqHook::new(
            spq.clone(),
            bot_id,
            SimTime::ZERO + offset,
            credits,
            strategy,
            sc.tick.as_hours_f64(),
        );
        sims.push(GridSim::new(dci, &bot, sc.sim_config(), sc.seed, hook));
        meta.push((i, user, offset, sc, credits, bot.size() as u32));
    }

    let results = run_many(sims);
    let mut tenants = Vec::with_capacity(results.len());
    let mut events = 0u64;
    {
        let service = spq.borrow();
        for ((result, hook), (i, user, offset, sc, credits, size)) in results.into_iter().zip(meta)
        {
            events += result.events;
            let admitted = hook.admitted().unwrap_or(false);
            let bot = hook.bot();
            let spent = service.credits.spent(bot);
            let provisioned = if admitted { credits } else { 0.0 };
            let metrics = metrics_from(&sc, &result, provisioned, spent, size);
            tenants.push(TenantOutcome {
                tenant: i,
                user,
                bot,
                admitted,
                offset,
                metrics,
                qos: service.tenant_metrics(bot),
            });
        }
    }
    let peak = spq
        .borrow()
        .pool()
        .map(|p| p.peak_in_use())
        .unwrap_or_default();
    let service = Rc::try_unwrap(spq)
        .expect("all hooks dropped with their simulations")
        .into_inner();
    MultiTenantReport {
        tenants,
        pool_capacity: mt.pool_capacity,
        peak_pool_in_use: peak,
        events,
        service,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MwKind;
    use betrace::Preset;
    use botwork::BotClass;

    fn quick_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, seed);
        s.scale = 0.5;
        s
    }

    #[test]
    fn baseline_completes_and_uses_no_cloud() {
        let m = run_baseline(&quick_scenario(1));
        assert!(m.completed);
        assert_eq!(m.cloud.workers_started, 0);
        assert_eq!(m.credits_spent, 0.0);
        assert!(m.completion_secs > 0.0);
        assert_eq!(m.env, "g5klyo/XWHEP/BIG");
    }

    #[test]
    fn spequlos_run_bills_credits_within_provision() {
        let sc = quick_scenario(2).with_strategy(StrategyCombo::paper_default());
        let (m, service) = run_with_spequlos(&sc, SpeQuloS::new());
        assert!(m.completed);
        assert!(m.credits_provisioned > 0.0);
        assert!(m.credits_spent <= m.credits_provisioned + 1e-9);
        // The service archived the execution for future predictions.
        assert_eq!(service.info.history(&sc.env()).len(), 1);
    }

    #[test]
    fn paired_run_baseline_not_slower_much() {
        // SpeQuloS must never make the execution dramatically worse; on a
        // churny trace it should usually help.
        let sc = quick_scenario(3).with_strategy(StrategyCombo::paper_default());
        let p = run_paired(&sc);
        assert!(p.baseline.completed && p.speq.completed);
        assert!(
            p.speq.completion_secs <= p.baseline.completion_secs * 1.05,
            "speq {} vs baseline {}",
            p.speq.completion_secs,
            p.baseline.completion_secs
        );
        if let Some(tre) = p.tre {
            assert!(tre <= 1.0);
        }
    }

    #[test]
    fn multi_tenant_run_is_deterministic() {
        let base = quick_scenario(7).with_strategy(StrategyCombo::paper_default());
        let mt = crate::scenario::MultiTenantScenario::new(base, 3, 6);
        let a = run_multi_tenant(&mt);
        let b = run_multi_tenant(&mt);
        assert_eq!(a.events, b.events);
        assert_eq!(a.peak_pool_in_use, b.peak_pool_in_use);
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.metrics.completion_secs, tb.metrics.completion_secs);
            assert_eq!(ta.metrics.credits_spent, tb.metrics.credits_spent);
            assert_eq!(ta.qos, tb.qos);
        }
    }

    #[test]
    fn single_tenant_pool_run_matches_unpooled_run_when_uncontended() {
        // One tenant over a pool far larger than any request: arbitration
        // must be invisible — the execution equals the plain SpeQuloS run.
        let sc = quick_scenario(5).with_strategy(StrategyCombo::paper_default());
        let (solo, _) = run_with_spequlos(&sc, SpeQuloS::new());
        let mt = crate::scenario::MultiTenantScenario::new(sc, 1, 10_000);
        let report = run_multi_tenant(&mt);
        let t = &report.tenants[0];
        assert!(t.admitted);
        assert_eq!(t.metrics.completion_secs, solo.completion_secs);
        assert_eq!(t.metrics.events, solo.events);
        assert_eq!(t.metrics.credits_spent, solo.credits_spent);
        assert_eq!(t.metrics.cloud, solo.cloud);
        assert_eq!(t.qos.denied, 0);
    }

    #[test]
    fn paired_runs_share_the_pre_trigger_trajectory() {
        // Same seed ⇒ identical completion curve up to (shortly before)
        // the trigger point: compare tc(0.5) of both runs.
        let sc = quick_scenario(4).with_strategy(StrategyCombo::paper_default());
        let p = run_paired(&sc);
        let b = p.baseline.tc(0.5).expect("baseline reaches 50%");
        let s = p.speq.tc(0.5).expect("speq reaches 50%");
        assert_eq!(b, s, "pre-trigger trajectories must match");
    }
}
