//! Execution plumbing shared by every run mode: the protocol-driven QoS
//! hooks bridging the simulator to any [`SpqService`] endpoint, and the
//! per-run metric types.
//!
//! Since the transport redesign the hooks do not touch a [`SpeQuloS`]
//! directly: each monitoring tick becomes a `Request::ReportProgress`
//! through [`SpqService::handle`], and each returned `Response::Action`
//! becomes a simulator [`CloudCommand`]. The endpoint is a type
//! parameter, so the *same* hook drives
//!
//! * a local [`SpeQuloS`] (single-tenant runs),
//! * a [`SharedService`] — one in-process service shared by many tenants,
//! * a `spq-server` `RemoteService` — the service behind loopback/LAN TCP,
//! * or any `&mut dyn SpqService` (the blanket impls in
//!   `spequlos::protocol` make references and boxes endpoints too).
//!
//! Runs are driven through [`Experiment`](crate::Experiment)
//! (`Experiment::new(scenario).paired().run()`); the pre-builder free
//! functions (`run_baseline` & co.) were removed after a deprecation
//! cycle — see the README migration table.

use crate::scenario::Scenario;
use botwork::{generate, Bot, BotId};
use dgrid::{CloudCommand, CloudUsage, QosHook, TickView};
use simcore::{SimDuration, SimTime, TimeSeries};
use spequlos::protocol::{Request, Response, SpqService};
use spequlos::{
    tail_stats, BotProgress, CloudAction, SpeQuloS, StrategyCombo, TailStats, TenantMetrics, UserId,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Translates the simulator's tick view into the protocol's progress
/// snapshot (the only data that crosses the monitoring boundary, §3.2).
fn progress_of(view: &TickView) -> BotProgress {
    BotProgress {
        now: view.now,
        size: view.bot_size,
        completed: view.completed,
        dispatched: view.dispatched,
        queued: view.ready,
        running: view.running,
        cloud_running: view.cloud_running,
    }
}

/// Maps a protocol response onto the simulator command for this tick.
/// Anything but an explicit `Action` — including transport errors from a
/// remote endpoint — means "touch nothing": the hook contract forbids
/// panicking mid-simulation.
fn command_of(response: Response) -> CloudCommand {
    match response {
        Response::Action { action, .. } => match action {
            CloudAction::None => CloudCommand::None,
            CloudAction::Start(n) => CloudCommand::Start(n),
            CloudAction::StopAll => CloudCommand::StopAll,
        },
        _ => CloudCommand::None,
    }
}

/// Adapter: drives one BoT's QoS through a protocol endpoint from the
/// simulator's hook seam. Generic over the endpoint (see the
/// [module docs](self)); `SpqHook` with no parameter is the plain local
/// service.
pub struct SpqHook<S: SpqService = SpeQuloS> {
    /// The protocol endpoint (recovered after the run — for a local
    /// service this carries billing/archive/favor state).
    pub service: S,
    bot: BotId,
    /// Ask the Oracle for a completion-time prediction once this
    /// completion ratio is reached (the `getQoSInformation` arrow of
    /// Fig. 3; also what Table 4 scores).
    predict_at: Option<f64>,
    predicted: bool,
    billing: Option<(f64, f64)>,
}

impl<S: SpqService> SpqHook<S> {
    /// Wraps an endpoint around one registered BoT; a prediction is
    /// requested once at 50% completion, as in the paper's evaluation.
    pub fn new(service: S, bot: BotId) -> Self {
        SpqHook {
            service,
            bot,
            predict_at: Some(0.5),
            predicted: false,
            billing: None,
        }
    }

    /// The BoT this hook monitors.
    pub fn bot(&self) -> BotId {
        self.bot
    }

    /// Credits billed against the BoT's order, from the `Completed`
    /// billing summary (0 before the run finished).
    pub fn spent(&self) -> f64 {
        self.billing.map(|(spent, _)| spent).unwrap_or(0.0)
    }

    /// Unspent credits refunded at `pay` time (0 before the run
    /// finished).
    pub fn refund(&self) -> f64 {
        self.billing.map(|(_, refund)| refund).unwrap_or(0.0)
    }

    /// Consumes the hook, returning the endpoint.
    pub fn into_service(self) -> S {
        self.service
    }
}

impl<S: SpqService> QosHook for SpqHook<S> {
    fn on_tick(&mut self, view: &TickView) -> CloudCommand {
        let progress = progress_of(view);
        if let Some(ratio) = self.predict_at {
            if !self.predicted && progress.completion_ratio() >= ratio {
                self.predicted = true;
                let _ = self
                    .service
                    .handle(Request::Predict { bot: self.bot }, view.now);
            }
        }
        command_of(self.service.handle(
            Request::ReportProgress {
                bot: self.bot,
                progress,
            },
            view.now,
        ))
    }

    fn on_finish(&mut self, now: SimTime) {
        if let Response::Completed { spent, refund, .. } = self
            .service
            .handle(Request::Complete { bot: self.bot }, now)
        {
            self.billing = Some((spent, refund));
        }
    }
}

/// An in-process endpoint many hooks can share: one [`SpeQuloS`] behind
/// `Rc<RefCell>`, one handle per tenant. The single-threaded interleaved
/// driver ([`dgrid::run_many`]) calls at most one hook at a time, so the
/// `borrow_mut` in [`SpqService::handle`] never contends.
#[derive(Clone, Debug)]
pub struct SharedService(Rc<RefCell<SpeQuloS>>);

impl SharedService {
    /// Wraps a service for sharing; [`SharedService::clone`] hands out
    /// further endpoints to the same instance.
    pub fn new(service: SpeQuloS) -> Self {
        SharedService(Rc::new(RefCell::new(service)))
    }

    /// Recovers the service once every clone is dropped; `Err(self)`
    /// while other endpoints are still alive.
    pub fn into_inner(self) -> Result<SpeQuloS, SharedService> {
        Rc::try_unwrap(self.0)
            .map(RefCell::into_inner)
            .map_err(SharedService)
    }
}

impl SpqService for SharedService {
    fn handle(&mut self, request: Request, now: SimTime) -> Response {
        self.0.borrow_mut().handle(request, now)
    }
}

/// Shared transcript sink for [`SessionRecorder`]: the `(service time,
/// request)` pairs in exact service-arrival order. `Arc<Mutex<…>>`
/// rather than `Rc` so experiments carrying a sink stay `Send` for the
/// sweep runner.
pub type SessionSink = std::sync::Arc<std::sync::Mutex<Vec<(SimTime, Request)>>>;

/// An endpoint wrapper that records every request it forwards — the seam
/// the durability tests use to capture a full experiment transcript and
/// feed it through the write-ahead log
/// ([`spequlos::wal`]).
///
/// All endpoints of one run share a single [`SessionSink`]; because the
/// simulator drives tenants on one thread (and remote endpoints answer
/// one request per call), the recording order *is* the order the service
/// observed — replaying the sink into an identically configured fresh
/// service reproduces the final state bit-for-bit.
#[derive(Debug)]
pub struct SessionRecorder<S> {
    inner: S,
    sink: SessionSink,
}

impl<S> SessionRecorder<S> {
    /// Wraps `inner`, recording into `sink` (shared across endpoints).
    pub fn new(inner: S, sink: SessionSink) -> Self {
        SessionRecorder { inner, sink }
    }

    /// Unwraps the endpoint, leaving the transcript in the sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: SpqService> SpqService for SessionRecorder<S> {
    fn handle(&mut self, request: Request, now: SimTime) -> Response {
        self.sink
            .lock()
            .expect("session sink poisoned")
            .push((now, request.clone()));
        self.inner.handle(request, now)
    }
}

/// Everything measured about one executed scenario.
#[derive(Clone, Debug)]
pub struct ExecutionMetrics {
    /// Environment label (`trace/middleware/class`).
    pub env: String,
    /// Strategy used (`None` = baseline).
    pub strategy: Option<StrategyCombo>,
    /// Seed.
    pub seed: u64,
    /// Whether the BoT completed within the simulation cap.
    pub completed: bool,
    /// Completion time in seconds (cap value if not completed).
    pub completion_secs: f64,
    /// Tail statistics (requires completion past the 90% mark).
    pub tail: Option<TailStats>,
    /// Credits provisioned for the run (0 for baselines).
    pub credits_provisioned: f64,
    /// Credits actually spent.
    pub credits_spent: f64,
    /// Cloud usage counters.
    pub cloud: CloudUsage,
    /// Simulation events processed.
    pub events: u64,
    /// Completed-count time series (for `tc(x)` and predictions).
    pub completed_series: TimeSeries,
    /// BoT size.
    pub bot_size: u32,
    /// Fraction of completed work executed in the cloud.
    pub cloud_work_fraction: f64,
}

impl ExecutionMetrics {
    /// `tc(x)`: time at which fraction `x` of the BoT was complete.
    pub fn tc(&self, x: f64) -> Option<SimTime> {
        self.completed_series
            .time_to_reach(x * self.bot_size as f64)
    }
}

/// Generates the BoT of a scenario (deterministic in `(class, seed)`).
pub fn bot_of(scenario: &Scenario) -> Bot {
    generate(scenario.class, BotId(0), scenario.seed)
}

pub(crate) fn metrics_from(
    scenario: &Scenario,
    result: &dgrid::RunResult,
    credits_provisioned: f64,
    credits_spent: f64,
    bot_size: u32,
) -> ExecutionMetrics {
    let completion = result
        .completion_time
        .unwrap_or(SimTime::ZERO + scenario.max_sim_time);
    let tail = result
        .completion_time
        .and_then(|t| tail_stats(&result.completed_series, &result.completion_times, t));
    ExecutionMetrics {
        env: scenario.env(),
        strategy: scenario.strategy,
        seed: scenario.seed,
        completed: result.completed,
        completion_secs: completion.as_secs_f64(),
        tail,
        credits_provisioned,
        credits_spent,
        cloud: result.cloud,
        events: result.events,
        completed_series: result.completed_series.clone(),
        bot_size,
        cloud_work_fraction: result.cloud_work_fraction(),
    }
}

/// A seed-paired baseline + SpeQuloS comparison (§4.2.1: "using the same
/// seed value allows a fair comparison").
#[derive(Clone, Debug)]
pub struct PairedRun {
    /// The run without SpeQuloS.
    pub baseline: ExecutionMetrics,
    /// The run with SpeQuloS.
    pub speq: ExecutionMetrics,
    /// Tail Removal Efficiency (`None` if the baseline had no tail or
    /// either run did not complete).
    pub tre: Option<f64>,
    /// Completion-time speed-up `t_baseline / t_speq`.
    pub speedup: f64,
}

/// QoS adapter for one tenant of a shared service: like [`SpqHook`] but
/// the order is deferred. The BoT is registered up front (at its
/// submission time, so the Oracle's elapsed-time estimates are anchored
/// correctly), but the `orderQoS` request is sent at the first
/// monitoring tick at or after the tenant's arrival — admission control
/// therefore sees the pool as it is *then*, so an order rejected at a
/// busy moment differs from one arriving after earlier tenants completed
/// and freed their slots.
///
/// Generic over the endpoint: [`SharedService`] clones for the
/// in-process multi-tenant run, one `RemoteService` connection per
/// tenant when the shared service lives behind `spq-server`.
pub struct SharedSpqHook<S: SpqService = SharedService> {
    service: S,
    bot: BotId,
    submit_at: SimTime,
    credits: f64,
    strategy: StrategyCombo,
    /// Admission-control verdict, once the order was placed.
    admitted: Option<bool>,
    billing: Option<(f64, f64)>,
}

impl<S: SpqService> SharedSpqHook<S> {
    /// A tenant whose (already registered) BoT `bot` arrives at
    /// `submit_at`, ordering `credits` of QoS under `strategy`.
    pub fn new(
        service: S,
        bot: BotId,
        submit_at: SimTime,
        credits: f64,
        strategy: StrategyCombo,
    ) -> Self {
        SharedSpqHook {
            service,
            bot,
            submit_at,
            credits,
            strategy,
            admitted: None,
            billing: None,
        }
    }

    /// The tenant's BoT id.
    pub fn bot(&self) -> BotId {
        self.bot
    }

    /// Whether the QoS order passed admission control (`None` before the
    /// order was placed).
    pub fn admitted(&self) -> Option<bool> {
        self.admitted
    }

    /// Credits billed against the tenant's order, from the `Completed`
    /// billing summary (0 before the run finished).
    pub fn spent(&self) -> f64 {
        self.billing.map(|(spent, _)| spent).unwrap_or(0.0)
    }

    /// Consumes the hook, returning the endpoint.
    pub fn into_service(self) -> S {
        self.service
    }
}

impl<S: SpqService> QosHook for SharedSpqHook<S> {
    fn on_tick(&mut self, view: &TickView) -> CloudCommand {
        if self.admitted.is_none() {
            if view.now < self.submit_at {
                return CloudCommand::None; // tenant has not arrived yet
            }
            let verdict = self.service.handle(
                Request::OrderQos {
                    bot: self.bot,
                    credits: self.credits,
                    strategy: Some(self.strategy),
                },
                view.now,
            );
            self.admitted = Some(matches!(verdict, Response::Ordered { .. }));
        }
        command_of(self.service.handle(
            Request::ReportProgress {
                bot: self.bot,
                progress: progress_of(view),
            },
            view.now,
        ))
    }

    fn on_finish(&mut self, now: SimTime) {
        if let Response::Completed { spent, refund, .. } = self
            .service
            .handle(Request::Complete { bot: self.bot }, now)
        {
            self.billing = Some((spent, refund));
        }
    }
}

/// Everything measured about one tenant of a multi-tenant run.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Tenant index (0-based).
    pub tenant: u32,
    /// The tenant's user account.
    pub user: UserId,
    /// The BoT id the service assigned.
    pub bot: BotId,
    /// Whether the QoS order passed admission control.
    pub admitted: bool,
    /// Submission offset on the shared clock.
    pub offset: SimDuration,
    /// Per-execution metrics (same shape as single-tenant runs).
    pub metrics: ExecutionMetrics,
    /// The arbiter's per-tenant counters.
    pub qos: TenantMetrics,
}

/// Result of a multi-tenant run
/// ([`Experiment::run_multi_tenant`](crate::Experiment::run_multi_tenant)).
#[derive(Clone, Debug)]
pub struct MultiTenantReport {
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Configured pool capacity.
    pub pool_capacity: u32,
    /// High-water mark of leased cloud workers across all tenants. On an
    /// unsharded run this is by construction never above
    /// `pool_capacity`; on a sharded run
    /// ([`Experiment::shards`](crate::Experiment::shards)) it is the sum
    /// of per-shard peaks — an upper bound on concurrent use, which may
    /// exceed `pool_capacity` because quotas move between the peaks.
    pub peak_pool_in_use: u32,
    /// Total simulation events across all tenants.
    pub events: u64,
    /// The final service state (credit accounts, archive, favors
    /// ledger). On a sharded run, shard 0; the rest are in
    /// [`MultiTenantReport::extra_shards`].
    pub service: SpeQuloS,
    /// Shards 1.. of a sharded run, in shard order (empty otherwise).
    pub extra_shards: Vec<SpeQuloS>,
}

impl MultiTenantReport {
    /// Tenants whose QoS order was admitted.
    pub fn admitted(&self) -> impl Iterator<Item = &TenantOutcome> {
        self.tenants.iter().filter(|t| t.admitted)
    }

    /// Every shard's final service, in shard order — `[service]` itself
    /// on an unsharded run.
    pub fn shard_services(&self) -> impl Iterator<Item = &SpeQuloS> {
        std::iter::once(&self.service).chain(self.extra_shards.iter())
    }

    /// Number of shards the run partitioned state into (1 = unsharded).
    pub fn shards(&self) -> u32 {
        1 + self.extra_shards.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spequlos::protocol::RequestError;

    fn view(secs: u64, done: u32) -> TickView {
        TickView {
            now: SimTime::from_secs(secs),
            bot_size: 100,
            arrived: 100,
            completed: done,
            dispatched: 100,
            ready: 0,
            running: 100 - done,
            cloud_running: 0,
        }
    }

    /// An endpoint that answers everything with a transport error — the
    /// worst a remote connection can degrade to.
    #[derive(Debug)]
    struct DeadEndpoint;

    impl SpqService for DeadEndpoint {
        fn handle(&mut self, _request: Request, _now: SimTime) -> Response {
            Response::Error(RequestError::Transport("gone".into()))
        }
    }

    #[test]
    fn hooks_swallow_endpoint_failures_as_no_commands() {
        // The QosHook contract: never panic mid-simulation, whatever the
        // endpoint does. A dead transport degrades to "no cloud".
        let mut hook = SpqHook::new(DeadEndpoint, BotId(0));
        assert_eq!(hook.on_tick(&view(60, 10)), CloudCommand::None);
        hook.on_finish(SimTime::from_secs(120));
        assert_eq!(hook.spent(), 0.0);

        let mut shared = SharedSpqHook::new(
            DeadEndpoint,
            BotId(0),
            SimTime::ZERO,
            100.0,
            StrategyCombo::paper_default(),
        );
        assert_eq!(shared.on_tick(&view(60, 10)), CloudCommand::None);
        assert_eq!(shared.admitted(), Some(false), "error order = not admitted");
        shared.on_finish(SimTime::from_secs(120));
        assert_eq!(shared.spent(), 0.0);
    }

    #[test]
    fn shared_service_recovers_the_instance_when_unshared() {
        let shared = SharedService::new(SpeQuloS::new());
        let clone = shared.clone();
        let still_shared = shared.into_inner().expect_err("a clone is alive");
        drop(clone);
        assert!(still_shared.into_inner().is_ok(), "last handle unwraps");
    }

    #[test]
    fn spq_hook_runs_the_protocol_cycle_against_a_local_service() {
        let mut spq = SpeQuloS::new();
        let user = UserId(1);
        spq.credits.deposit(user, 1_000.0);
        let bot = spq.register_qos("env", 100, user, SimTime::ZERO);
        spq.order_qos(bot, 150.0, StrategyCombo::paper_default(), SimTime::ZERO)
            .expect("funded");
        let mut hook = SpqHook::new(spq, bot);
        for minute in 1..=89u64 {
            assert_eq!(
                hook.on_tick(&view(minute * 60, minute as u32)),
                CloudCommand::None,
                "minute {minute}"
            );
        }
        // The 90% trigger crosses the protocol boundary as a Start.
        let CloudCommand::Start(n) = hook.on_tick(&view(5_400, 90)) else {
            panic!("trigger at 90% must start the fleet");
        };
        assert!(n >= 1);
        hook.on_finish(SimTime::from_secs(5_520));
        let spent = hook.spent();
        let service = hook.into_service();
        assert_eq!(spent, service.credits.spent(bot), "wire == ledger");
        assert!(service.credits.balance(user) > 850.0, "refund returned");
    }
}
