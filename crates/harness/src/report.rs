//! Plain-text tables and CSV output for the reproduction binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table with a CSV twin.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV (commas and quotes escaped by double-quoting).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.headers, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Writes `content` to `path`, creating parent directories.
pub fn write_file(path: impl AsRef<Path>, content: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

/// Formats seconds compactly (e.g. `"3612.0"`).
pub fn secs(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name    value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "a       1");
        assert_eq!(lines[3], "longer  22");
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(secs(3612.04), "3612.0");
        assert_eq!(pct(0.905), "90.5");
    }
}
