//! In-process counterpart of `spq_server::shard`: one [`RoutedService`]
//! owning N shard services behind a single [`SpqService`] endpoint.
//!
//! [`Experiment::shards`](crate::Experiment::shards) runs multi-tenant
//! experiments against partitioned state on both transports: in-process
//! it drives a `RoutedService`, over loopback it spawns a real
//! `ShardedServer`. For the results to be bit-identical the two must
//! make the same decisions in the same order, so this type mirrors the
//! server's per-request execute path exactly — route by tenant key
//! ([`spequlos::tenancy::route_request`]), sync the owning shard's pool
//! capacity to its [`PoolLease`] quota, dispatch, publish the shard's
//! load and outstanding credits back to the ledger, and run a
//! deterministic [`PoolLedger::rebalance`] pass every
//! `rebalance_every` handled requests. Cross-shard batches are refused
//! with the same typed error the server gives.

use simcore::SimTime;
use spequlos::protocol::{Request, RequestError, Response, SpqService};
use spequlos::tenancy::{route_request, PoolLease, PoolLedger};
use spequlos::SpeQuloS;
use std::cell::RefCell;
use std::rc::Rc;

/// N shard services behind one endpoint, with quota rebalancing.
/// Build with [`RoutedService::new`], recover the shards with
/// [`RoutedService::into_services`].
#[derive(Debug)]
pub struct RoutedService {
    shards: Vec<SpeQuloS>,
    leases: Vec<Option<PoolLease>>,
    ledger: Option<PoolLedger>,
    rebalance_every: u64,
    handled: u64,
}

impl RoutedService {
    /// Splits `template` into `shards` services (shard `i` allocates
    /// BoT ids `≡ i (mod shards)`; a pooled template's capacity becomes
    /// per-shard leases with no-starvation floor `floor`) and runs a
    /// deterministic ledger rebalance every `rebalance_every` handled
    /// requests.
    ///
    /// # Panics
    /// Panics if the template already has state (see
    /// [`SpeQuloS::into_shards`]) or `shards == 0`.
    pub fn new(template: SpeQuloS, shards: u32, floor: u32, rebalance_every: u64) -> Self {
        assert!(shards >= 1, "a routed service needs at least one shard");
        let (shards, ledger) = template.into_shards(shards, floor);
        let (ledger, leases) = match ledger {
            Some((ledger, leases)) => (Some(ledger), leases.into_iter().map(Some).collect()),
            None => (None, shards.iter().map(|_| None).collect()),
        };
        RoutedService {
            shards,
            leases,
            ledger,
            rebalance_every: rebalance_every.max(1),
            handled: 0,
        }
    }

    /// Number of shards behind the endpoint.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard services, in shard order.
    pub fn services(&self) -> &[SpeQuloS] {
        &self.shards
    }

    /// Consumes the endpoint and returns the shard services.
    pub fn into_services(self) -> Vec<SpeQuloS> {
        self.shards
    }

    /// The quota ledger, when the template carried a pool.
    pub fn ledger(&self) -> Option<&PoolLedger> {
        self.ledger.as_ref()
    }

    fn execute(&mut self, shard: usize, request: Request, now: SimTime) -> Response {
        if let Some(lease) = self.leases[shard].as_ref() {
            self.shards[shard].set_pool_capacity(lease.quota());
        }
        let response = self.shards[shard].handle(request, now);
        if let Some(lease) = self.leases[shard].as_ref() {
            let in_use = self.shards[shard].pool().map_or(0, |p| p.in_use());
            lease.publish(in_use, self.shards[shard].credits.total_outstanding());
        }
        self.handled += 1;
        if let Some(ledger) = self.ledger.as_ref() {
            if self.handled % self.rebalance_every == 0 {
                ledger.rebalance();
            }
        }
        response
    }
}

impl SpqService for RoutedService {
    fn handle(&mut self, request: Request, now: SimTime) -> Response {
        let n = self.shard_count();
        if let Request::Batch(items) = &request {
            let mut targets = items.iter().filter_map(|r| route_request(r, n));
            if let Some(first) = targets.next() {
                if targets.any(|t| t != first) {
                    return Response::Error(RequestError::Invalid(
                        "batch spans shards: split it per tenant".into(),
                    ));
                }
            }
        }
        let shard = route_request(&request, n).unwrap_or(0) as usize;
        self.execute(shard, request, now)
    }
}

/// [`RoutedService`] behind `Rc<RefCell<…>>` clones — the sharded
/// analogue of [`SharedService`](crate::SharedService), handing every
/// tenant of an in-process multi-tenant run an endpoint on the same
/// routed instance.
#[derive(Clone, Debug)]
pub struct SharedRouted(Rc<RefCell<RoutedService>>);

impl SharedRouted {
    /// Wraps a routed service for sharing.
    pub fn new(routed: RoutedService) -> Self {
        SharedRouted(Rc::new(RefCell::new(routed)))
    }

    /// Recovers the routed service once every clone is dropped;
    /// `Err(self)` while other endpoints are still alive.
    pub fn into_inner(self) -> Result<RoutedService, SharedRouted> {
        Rc::try_unwrap(self.0)
            .map(RefCell::into_inner)
            .map_err(SharedRouted)
    }
}

impl SpqService for SharedRouted {
    fn handle(&mut self, request: Request, now: SimTime) -> Response {
        self.0.borrow_mut().handle(request, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spequlos::tenancy::shard_of_user;
    use spequlos::UserId;

    #[test]
    fn routes_to_the_owning_shard_and_strides_bot_ids() {
        const SHARDS: u32 = 4;
        let mut routed = RoutedService::new(SpeQuloS::with_pool(16), SHARDS, 1, 64);
        for u in 0..12u64 {
            let user = UserId(u);
            let r = routed.handle(
                Request::Deposit {
                    user,
                    credits: 50.0,
                },
                SimTime::ZERO,
            );
            assert!(matches!(r, Response::Deposited { .. }), "got {r:?}");
            let r = routed.handle(
                Request::RegisterQos {
                    user,
                    env: "t/XWHEP/R".into(),
                    size: 8,
                },
                SimTime::ZERO,
            );
            let Response::Registered { bot } = r else {
                panic!("expected Registered, got {r:?}");
            };
            assert_eq!(
                bot.0 % u64::from(SHARDS),
                u64::from(shard_of_user(user, SHARDS))
            );
        }
        let services = routed.into_services();
        let registered: usize = services.iter().map(|s| s.log().len()).sum();
        assert!(registered > 0);
        for u in 0..12u64 {
            let user = UserId(u);
            let shard = shard_of_user(user, SHARDS) as usize;
            assert_eq!(services[shard].credits.balance(user), 50.0);
        }
    }

    #[test]
    fn cross_shard_batch_refused_single_shard_batch_served() {
        const SHARDS: u32 = 4;
        let a = UserId(1);
        let b = (2..999)
            .map(UserId)
            .find(|u| shard_of_user(*u, SHARDS) != shard_of_user(a, SHARDS))
            .expect("some user hashes elsewhere");
        let mut routed = RoutedService::new(SpeQuloS::new(), SHARDS, 1, 64);
        let r = routed.handle(
            Request::Batch(vec![
                Request::Deposit {
                    user: a,
                    credits: 1.0,
                },
                Request::Deposit {
                    user: b,
                    credits: 1.0,
                },
            ]),
            SimTime::ZERO,
        );
        assert!(
            matches!(&r, Response::Error(RequestError::Invalid(m)) if m.contains("spans shards"))
        );
        let r = routed.handle(
            Request::Batch(vec![
                Request::Deposit {
                    user: a,
                    credits: 1.0,
                },
                Request::Deposit {
                    user: a,
                    credits: 2.0,
                },
            ]),
            SimTime::ZERO,
        );
        assert!(matches!(r, Response::Batch(_)));
    }
}
