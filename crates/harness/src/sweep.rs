//! Parallel sweep executor.
//!
//! The paper's evaluation runs > 25 000 BoT executions (§4.1.3); each is
//! an independent simulation, so the sweep is embarrassingly parallel.
//! The scheduler is work-stealing over chunks: workers claim chunk-sized
//! index ranges from one shared atomic cursor, so a thread that lands on a
//! cheap item immediately steals the next chunk instead of idling — the
//! skew case that kills fixed partitioning (one long-deadline world next
//! to many short ones, exactly what the table sweeps produce).
//!
//! Results are deterministic: each item's output is keyed by its index and
//! merged back in input order, so the caller observes the serial map
//! regardless of thread interleaving. Std-only — no extra dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many chunks each worker should get on average: small enough that a
/// skewed chunk can be compensated by the other workers stealing the
/// remainder, large enough that the shared cursor is not contended.
const CHUNKS_PER_THREAD: usize = 8;

/// Maps `f` over `items` on `threads` worker threads, returning results in
/// input order (identical to `items.iter().map(&f).collect()`).
///
/// * `threads == 0` selects the available parallelism of the machine.
/// * `threads` is clamped to `items.len()` — extra threads would never
///   receive work — and to at least 1.
/// * Empty input returns immediately without spawning anything.
///
/// Work is claimed in chunks from an atomic cursor (chunk size targets
/// `CHUNKS_PER_THREAD` chunks per worker), so heavily skewed workloads
/// keep every thread busy until the slice is exhausted.
///
/// # Panics
/// Panics (with "sweep worker panicked") if `f` panics on any item.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let chunk = (items.len() / (threads * CHUNKS_PER_THREAD)).max(1);
    let cursor = AtomicUsize::new(0);
    // Each worker accumulates (index, result) pairs locally; the merge back
    // into input order happens once, single-threaded, after the join — no
    // per-item lock on the hot path.
    let locals: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((i, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join())
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|_| panic!("sweep worker panicked"))
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in locals.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn auto_parallelism() {
        let items: Vec<u32> = (0..50).collect();
        let out = parallel_map(&items, 0, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out: Vec<u32> = parallel_map(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_input_with_auto_threads() {
        let items: Vec<u32> = vec![];
        let out: Vec<u32> = parallel_map(&items, 0, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5u32, 6, 7];
        let out = parallel_map(&items, 64, |&x| x * x);
        assert_eq!(out, vec![25, 36, 49]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn propagates_panics() {
        let items = vec![1u32, 2, 3, 4];
        parallel_map(&items, 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn skewed_workload_matches_serial() {
        // One item carries 100× the work of the rest: a fixed partition
        // would idle all-but-one thread behind it; the stealing scheduler
        // must still return the exact serial result.
        let items: Vec<u64> = (0..64).collect();
        let work = |&x: &u64| -> u64 {
            let iters = if x == 0 { 100_000 } else { 1_000 };
            let mut acc = x;
            for i in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let serial: Vec<u64> = items.iter().map(work).collect();
        for threads in [2, 4, 16] {
            assert_eq!(
                parallel_map(&items, threads, work),
                serial,
                "{threads} threads"
            );
        }
    }

    proptest! {
        /// Output order and content equal the serial map for arbitrary item
        /// counts and thread counts 1..=16.
        #[test]
        fn prop_matches_serial_map(
            len in 0usize..130,
            threads in 1usize..=16,
            offset in 0u64..1000,
        ) {
            let items: Vec<u64> = (0..len as u64).map(|x| x + offset).collect();
            let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            let out = parallel_map(&items, threads, |&x| x * 3 + 1);
            prop_assert_eq!(out, serial);
        }

        /// `threads == 0` (auto) is also exactly the serial map.
        #[test]
        fn prop_auto_threads_matches_serial_map(len in 0usize..90) {
            let items: Vec<u32> = (0..len as u32).collect();
            let serial: Vec<u32> = items.iter().map(|&x| x ^ 0xa5a5).collect();
            let out = parallel_map(&items, 0, |&x| x ^ 0xa5a5);
            prop_assert_eq!(out, serial);
        }
    }
}
