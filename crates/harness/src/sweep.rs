//! Parallel sweep executor.
//!
//! The paper's evaluation runs > 25 000 BoT executions (§4.1.3); each is
//! an independent simulation, so the sweep is embarrassingly parallel.
//! Scoped threads pull indices from an atomic counter and write results
//! into pre-sized slots — result order is deterministic (index-addressed)
//! regardless of thread interleaving.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on `threads` worker threads, preserving order.
/// `threads = 0` selects the available parallelism.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots[i].lock() = Some(r);
                })
            })
            .collect();
        if workers.into_iter().any(|w| w.join().is_err()) {
            panic!("sweep worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn auto_parallelism() {
        let items: Vec<u32> = (0..50).collect();
        let out = parallel_map(&items, 0, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out: Vec<u32> = parallel_map(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn propagates_panics() {
        let items = vec![1u32, 2, 3, 4];
        parallel_map(&items, 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
