//! # spq-harness — experiment harness for the SpeQuloS reproduction
//!
//! Composes the substrates (traces, workloads, middleware, clouds) and the
//! SpeQuloS service into runnable scenarios, mirroring the paper's
//! evaluation methodology (§4.1): seed-paired executions with and without
//! SpeQuloS, parallel sweeps over the (trace × middleware × BoT class ×
//! strategy) space, prediction-quality scoring, and the EDGI composite
//! deployment of §5.
//!
//! Every run mode goes through one [`Experiment`] builder:
//!
//! ```
//! use betrace::Preset;
//! use botwork::BotClass;
//! use spq_harness::{Experiment, MwKind, Scenario};
//! use spequlos::StrategyCombo;
//!
//! let mut sc = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, 7)
//!     .with_strategy(StrategyCombo::paper_default());
//! sc.scale = 0.3; // shrink the cluster for a quick run
//! let paired = Experiment::new(sc).paired().run_paired();
//! assert!(paired.baseline.completed && paired.speq.completed);
//! ```
//!
//! The service side of every run speaks the wire protocol
//! ([`spequlos::protocol`]) through the hooks in [`runner`], so an
//! experiment can also run end-to-end over loopback TCP
//! (`Experiment::new(sc).loopback()`, served by `spq-server`) or against
//! any `&mut dyn SpqService` ([`Experiment::service_dyn`]) — with results
//! bit-identical to the in-process transport.
//!
//! The pre-builder free functions (`run_baseline`, `run_with_spequlos`,
//! `run_paired`, `run_multi_tenant`) completed their deprecation cycle
//! and were removed; see the README's migration note for the one-line
//! mapping onto [`Experiment`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edgi;
pub mod experiment;
pub mod prediction;
pub mod report;
pub mod routed;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod workload;

pub use edgi::{run_edgi, EdgiReport};
pub use experiment::{Experiment, Outcome, Transport};
pub use prediction::{archive_of, prediction_outcomes, prediction_success_rate};
pub use report::{pct, secs, write_file, Table};
pub use routed::{RoutedService, SharedRouted};
pub use runner::{
    bot_of, ExecutionMetrics, MultiTenantReport, PairedRun, SessionRecorder, SessionSink,
    SharedService, SharedSpqHook, SpqHook, TenantOutcome,
};
pub use scenario::{deployment_of, MultiTenantScenario, MwKind, Scenario, TenantArrivals};
pub use sweep::parallel_map;
pub use workload::{Recorder, RequestKind, RequestMix};
