//! # spq-harness — experiment harness for the SpeQuloS reproduction
//!
//! Composes the substrates (traces, workloads, middleware, clouds) and the
//! SpeQuloS service into runnable scenarios, mirroring the paper's
//! evaluation methodology (§4.1): seed-paired executions with and without
//! SpeQuloS, parallel sweeps over the (trace × middleware × BoT class ×
//! strategy) space, prediction-quality scoring, and the EDGI composite
//! deployment of §5.
//!
//! ```
//! use betrace::Preset;
//! use botwork::BotClass;
//! use spq_harness::{run_paired, MwKind, Scenario};
//! use spequlos::StrategyCombo;
//!
//! let mut sc = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, 7)
//!     .with_strategy(StrategyCombo::paper_default());
//! sc.scale = 0.3; // shrink the cluster for a quick run
//! let paired = run_paired(&sc);
//! assert!(paired.baseline.completed && paired.speq.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edgi;
pub mod prediction;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sweep;

pub use edgi::{run_edgi, EdgiReport};
pub use prediction::{archive_of, prediction_outcomes, prediction_success_rate};
pub use report::{pct, secs, write_file, Table};
pub use runner::{
    bot_of, run_baseline, run_multi_tenant, run_paired, run_with_spequlos, ExecutionMetrics,
    MultiTenantReport, PairedRun, SharedSpqHook, SpqHook, TenantOutcome,
};
pub use scenario::{deployment_of, MultiTenantScenario, MwKind, Scenario, TenantArrivals};
pub use sweep::parallel_map;
