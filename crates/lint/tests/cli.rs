//! End-to-end tests of the `spq-lint` binary against checked-in fixture
//! trees (`crates/lint/fixtures/`, which the real repository walk skips)
//! and against the repository itself.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn run_lint(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_spq-lint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn spq-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn bad_fixture_tree_fails_with_pinned_findings() {
    let (code, out) = run_lint(&fixture("bad"));
    assert_eq!(code, 1, "bad tree must exit 1:\n{out}");
    for expect in [
        "crates/core/src/sim.rs:5: det-wall-clock:",
        "crates/core/src/sim.rs:9: det-env:",
        "crates/core/src/sim.rs:13: det-unordered-iter:",
        "crates/core/src/sim.rs:16: lint-bad-suppression:",
        "crates/other/src/lib.rs:1: forbid-unsafe-missing:",
        "crates/other/src/lib.rs:3: unsafe-outside-polling:",
        "crates/server/src/frame.rs:2: panic-unwrap:",
        "crates/server/src/frame.rs:4: panic-macro:",
        "crates/server/src/frame.rs:6: panic-index:",
    ] {
        assert!(out.contains(expect), "missing {expect:?} in:\n{out}");
    }
    assert!(
        out.contains("spq-lint: 9 findings, 3 files scanned"),
        "{out}"
    );
}

#[test]
fn clean_fixture_tree_passes_and_lists_honored_suppressions() {
    let (code, out) = run_lint(&fixture("clean"));
    assert_eq!(code, 0, "clean tree must exit 0:\n{out}");
    assert!(
        out.contains("spq-lint: 0 findings, 1 file scanned, 1 suppression honored"),
        "{out}"
    );
    assert!(
        out.contains("crates/core/src/lib.rs:6: allow(det-unordered-iter)"),
        "honored suppressions stay visible in the summary:\n{out}"
    );
}

#[test]
fn the_repository_itself_lints_clean_at_head() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, out) = run_lint(&root);
    assert_eq!(code, 0, "the workspace must lint clean:\n{out}");
    assert!(out.contains("0 findings"), "{out}");
}

#[test]
fn help_exits_zero_and_unknown_flags_exit_two() {
    let help = Command::new(env!("CARGO_BIN_EXE_spq-lint"))
        .arg("--help")
        .output()
        .expect("spawn spq-lint");
    assert_eq!(help.status.code(), Some(0));

    let unknown = Command::new(env!("CARGO_BIN_EXE_spq-lint"))
        .arg("--frobnicate")
        .output()
        .expect("spawn spq-lint");
    assert_eq!(unknown.status.code(), Some(2));
}
