//! Property coverage for the lint's hand-rolled lexer.
//!
//! The lexer runs over every `.rs` file in the workspace — including
//! any malformed scratch file someone leaves behind — so its contract
//! is totality, pinned adversarially here:
//!
//! * arbitrary byte soup (lossily decoded) never panics the lexer, and
//!   the resulting spans are sane: in-bounds, strictly advancing,
//!   non-overlapping, with monotone 1-based line numbers;
//! * lexing is **prefix-stable**: truncating the input at any token
//!   boundary yields exactly the tokens before that boundary — the
//!   property that guarantees one bad region cannot corrupt how the
//!   rest of a file is classified;
//! * every byte of real-looking Rust is covered by a token or by
//!   inter-token whitespace (nothing is silently skipped).

use proptest::{any, prop_assert, prop_assert_eq, proptest};
use spq_lint::lexer::{lex, Kind};

/// Bytes biased toward lexer-relevant structure: quotes, hashes,
/// slashes, newlines, and raw-literal prefixes appear far more often
/// than in uniform soup.
fn structured(bytes: Vec<u8>) -> String {
    const PALETTE: [&str; 16] = [
        "\"", "'", "#", "/", "*", "\n", "r", "b", "c", "\\", "x", "_", "0", " ", "!", "é",
    ];
    bytes
        .into_iter()
        .map(|b| PALETTE[(b % PALETTE.len() as u8) as usize])
        .collect()
}

proptest! {
    #[test]
    fn byte_soup_never_panics_and_spans_are_sane(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex(&src);
        let mut prev_end = 0usize;
        let mut prev_line = 1u32;
        for t in &toks {
            prop_assert!(t.start < t.end, "empty span");
            prop_assert!(t.start >= prev_end, "overlap");
            prop_assert!(t.end <= src.len(), "out of bounds");
            prop_assert!(t.line >= prev_line, "line went backwards");
            prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            prev_end = t.end;
            prev_line = t.line;
        }
    }

    #[test]
    fn structured_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src = structured(bytes);
        let toks = lex(&src);
        // Every non-whitespace byte is inside some token.
        let mut covered = vec![false; src.len()];
        for t in &toks {
            for c in covered.get_mut(t.start..t.end).unwrap_or(&mut []) {
                *c = true;
            }
        }
        for (i, ch) in src.char_indices() {
            if !ch.is_whitespace() {
                prop_assert!(covered.get(i) == Some(&true), "byte {i} ({ch:?}) uncovered");
            }
        }
    }

    #[test]
    fn lexing_is_prefix_stable(bytes in proptest::collection::vec(any::<u8>(), 0..200), pick in any::<u8>()) {
        let src = structured(bytes);
        let toks = lex(&src);
        if toks.is_empty() {
            return Ok(());
        }
        // Truncate at the boundary after token `pick % len`.
        let cut_at = toks[pick as usize % toks.len()].end;
        let prefix = &src[..cut_at];
        let again = lex(prefix);
        let expect: Vec<_> = toks.iter().copied().take_while(|t| t.end <= cut_at).collect();
        prop_assert_eq!(again, expect);
    }

    #[test]
    fn strings_and_comments_never_leak_ident_tokens(payload in proptest::collection::vec(any::<u8>(), 0..40)) {
        // Whatever garbage sits inside a (terminated) string or line
        // comment, it must never surface as an Ident the rules could
        // match on.
        let inner: String = payload
            .into_iter()
            .map(|b| if b.is_ascii_alphanumeric() || b == b' ' { b as char } else { 'x' })
            .collect();
        let src = format!("let s = \"{inner}\"; // {inner}\nnext");
        let toks = lex(&src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text(&src))
            .collect();
        prop_assert_eq!(idents, vec!["let", "s", "next"]);
    }
}
