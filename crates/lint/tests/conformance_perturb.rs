//! Spec-conformance perturbation tests: copy the *real* PROTOCOL.md and
//! binary codec into a scratch tree, verify they conform, then flip one
//! side at a time and require `spec-protocol-tags` to fire. This pins
//! the property the rule exists for — neither the spec nor the code can
//! drift without the other moving in lockstep.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// A throwaway tree shaped like the repository, removed on drop.
struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("spq-lint-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/server/src")).expect("mk scratch tree");
        Self(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        fs::write(self.0.join(rel), contents).expect("write scratch file");
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn real_inputs() -> (String, String) {
    let root = repo_root();
    let protocol = fs::read_to_string(root.join("PROTOCOL.md")).expect("PROTOCOL.md");
    let binary = fs::read_to_string(root.join("crates/server/src/binary.rs")).expect("binary.rs");
    (protocol, binary)
}

fn lint_tree(tag: &str, protocol: &str, binary: &str) -> Vec<spq_lint::Finding> {
    let tree = TempTree::new(tag);
    tree.write("PROTOCOL.md", protocol);
    tree.write("crates/server/src/binary.rs", binary);
    spq_lint::run(&tree.0).expect("lint scratch tree").findings
}

#[test]
fn pristine_copies_conform() {
    let (protocol, binary) = real_inputs();
    let findings = lint_tree("pristine", &protocol, &binary);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn perturbing_a_code_tag_constant_fails_conformance() {
    let (protocol, binary) = real_inputs();
    let original = "const REQ_DEPOSIT: u8 = 0x01;";
    assert!(
        binary.contains(original),
        "codec layout changed — update this test"
    );
    let mutated = binary.replace(original, "const REQ_DEPOSIT: u8 = 0x7f;");
    let findings = lint_tree("code-tag", &protocol, &mutated);
    assert!(
        findings.iter().any(|f| f.rule == "spec-protocol-tags"),
        "a drifted code tag must fail conformance: {findings:?}"
    );
}

#[test]
fn perturbing_a_protocol_doc_row_fails_conformance() {
    let (protocol, binary) = real_inputs();
    let original = "| `0x06` | `Complete` |";
    assert!(
        protocol.contains(original),
        "spec layout changed — update this test"
    );
    let mutated = protocol.replace(original, "| `0x3f` | `Complete` |");
    let findings = lint_tree("doc-row", &mutated, &binary);
    assert!(
        findings.iter().any(|f| f.rule == "spec-protocol-tags"),
        "a drifted spec row must fail conformance: {findings:?}"
    );
}

#[test]
fn deleting_the_spec_while_keeping_the_codec_fails_conformance() {
    let (_, binary) = real_inputs();
    let tree = TempTree::new("no-spec");
    tree.write("crates/server/src/binary.rs", &binary);
    let findings = spq_lint::run(&tree.0).expect("lint scratch tree").findings;
    assert!(
        findings.iter().any(|f| f.rule == "spec-protocol-tags"),
        "codec without spec must fail: {findings:?}"
    );
}
