//! `spq-lint` — run the workspace static-analysis pass.
//!
//! ```console
//! $ cargo run -p spq-lint --release            # lint the repository
//! $ spq-lint --root <path>                     # lint another tree
//! ```
//!
//! Findings print one per line as `file:line: rule-id: message`; the
//! process exits 1 when any finding survives suppression, 0 otherwise.
//! Honored suppressions are listed in the summary so waived debt stays
//! visible in every run.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: spq-lint [--root <path>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => {
                println!("usage: spq-lint [--root <path>]");
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }
    // Default: the workspace root, two levels above this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let report = match spq_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spq-lint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    let used: Vec<_> = report.suppressions.iter().filter(|s| s.used).collect();
    let unused: Vec<_> = report.suppressions.iter().filter(|s| !s.used).collect();
    println!(
        "spq-lint: {} finding{}, {} file{} scanned, {} suppression{} honored",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.files_scanned,
        if report.files_scanned == 1 { "" } else { "s" },
        used.len(),
        if used.len() == 1 { "" } else { "s" },
    );
    for s in &used {
        println!("  {}:{}: allow({}) — {}", s.file, s.line, s.rule, s.reason);
    }
    if !unused.is_empty() {
        println!("  unused suppressions (stale — remove them):");
        for s in &unused {
            println!("  {}:{}: allow({}) — {}", s.file, s.line, s.rule, s.reason);
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
