//! # spq-lint — workspace static analysis for the SpeQuloS reproduction
//!
//! The repository's load-bearing guarantees — bit-identical replay, a
//! reactor that must never die on a bad connection, `unsafe` confined to
//! the one `poll(2)` shim, and normative specs (PROTOCOL.md, the
//! telemetry schema) that must match the source — are enforced here by
//! machine check instead of convention. Two layers:
//!
//! * **Source lints** ([`rules`]) run over a small hand-rolled lexer
//!   ([`lexer`]) that correctly skips strings, raw strings, char
//!   literals and both comment styles, so `"unwrap()"` in a string or
//!   `unsafe` in a comment never fires.
//! * **Spec conformance** ([`conformance`]) parses our own artifacts —
//!   PROTOCOL.md's tag tables, BENCHMARKS.md's telemetry schema, the
//!   README/ARCHITECTURE crate maps, the CI workflow — and cross-checks
//!   them against the source of truth in the code.
//!
//! Findings print as `file:line: rule-id: message` and make the binary
//! exit 1. A finding can be waived in place with
//!
//! ```text
//! // spq-lint: allow(rule-id) — reason
//! ```
//!
//! on the same line or the line above; the reason is mandatory (an
//! empty reason is itself a finding) and every honored suppression is
//! listed in the run summary so the debt stays visible. The rule table
//! lives in ARCHITECTURE.md § Static analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, anchored to a repo-relative file and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, unix separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule identifier (see ARCHITECTURE.md § Static analysis).
    pub rule: &'static str,
    /// Human-oriented explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A `// spq-lint: allow(rule-id) — reason` comment found in a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// Repo-relative path of the comment.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The rule it waives.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Whether it actually waived a finding in this run.
    pub used: bool,
}

/// Everything one run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every syntactically valid suppression encountered.
    pub suppressions: Vec<Suppression>,
    /// Number of `.rs` files scanned by the source lints.
    pub files_scanned: usize,
}

/// What the source lints should enforce for a given file, derived from
/// its repo-relative path. See ARCHITECTURE.md § Static analysis for
/// the rationale behind each set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Role {
    /// Simulation crate: wall-clock, `std::env`, and unordered-map
    /// iteration are replay-divergence hazards.
    pub sim: bool,
    /// `spq-server` connection/dispatch path: a panic costs the whole
    /// reactor, so `unwrap`/`expect`/panicking macros are forbidden.
    pub hot: bool,
    /// Parses untrusted wire bytes: slice indexing is forbidden on top
    /// of the `hot` set.
    pub decode: bool,
    /// A crate root that must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// The one crate allowed to use `unsafe` (`compat/polling`).
    pub unsafe_ok: bool,
}

/// Crates whose sources must stay deterministic (replayable).
pub const SIM_CRATES: &[&str] = &[
    "simcore", "core", "dgrid", "betrace", "unicloud", "botwork", "harness",
];

/// `spq-server` files on the connection/dispatch path.
pub const HOT_FILES: &[&str] = &[
    "crates/server/src/server.rs",
    "crates/server/src/shard.rs",
    "crates/server/src/frame.rs",
    "crates/server/src/binary.rs",
    "crates/server/src/wire.rs",
];

/// The subset of [`HOT_FILES`] that decode untrusted wire bytes.
pub const DECODE_FILES: &[&str] = &[
    "crates/server/src/frame.rs",
    "crates/server/src/binary.rs",
    "crates/server/src/wire.rs",
];

/// Classifies a repo-relative path (unix separators) into its [`Role`].
pub fn classify(rel: &str) -> Role {
    let mut role = Role::default();
    for sim in SIM_CRATES {
        if rel.starts_with(&format!("crates/{sim}/src/")) {
            role.sim = true;
        }
    }
    role.hot = HOT_FILES.contains(&rel);
    role.decode = DECODE_FILES.contains(&rel);
    role.unsafe_ok = rel.starts_with("compat/polling/");
    role.crate_root = rel == "src/lib.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
        || (rel.starts_with("compat/") && rel.ends_with("/src/lib.rs") && !role.unsafe_ok);
    role
}

/// Directories the repository walk never descends into.
fn skip_dir(name: &str) -> bool {
    name == "target" || name == ".git" || name == "fixtures" || name == "results"
}

/// Collects every `.rs` file under `root` (sorted, deterministic),
/// skipping build output, VCS state and the lint's own test fixtures.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        children.sort();
        for child in children {
            let name = child
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if child.is_dir() {
                if !skip_dir(&name) {
                    stack.push(child);
                }
            } else if name.ends_with(".rs") {
                files.push(child);
            }
        }
    }
    files.sort();
    files
}

/// Runs the full pass — source lints over every `.rs` file plus the
/// conformance checks — against a repository root.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_rs_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let file = rules::check_file(&rel, &src);
        report.findings.extend(file.findings);
        report.suppressions.extend(file.suppressions);
        report.files_scanned += 1;
    }
    report.findings.extend(conformance::check(root)?);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    // One finding per (file, line, rule): a line like `[b[0], b[1]]`
    // raising panic-index four times is noise, not signal.
    report
        .findings
        .dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    report
        .suppressions
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}
