//! Layer 2 — spec-conformance checks.
//!
//! These parse the repository's own normative artifacts and cross-check
//! them against the source of truth in code, so the specs and the code
//! cannot drift apart silently:
//!
//! * `spec-protocol-tags` — the `REQ_*`/`RESP_*`/`ERR_*` tag constants
//!   in `spq_server::binary` ↔ the PROTOCOL.md tag tables (§5.3, §5.4,
//!   error codes). Every constant documented, every documented tag
//!   implemented, values equal.
//! * `spec-telemetry-schema` — `SCHEMA_KEYS` / `LATENCY_SCHEMA_KEYS` in
//!   `spq_bench::telemetry` ↔ the BENCHMARKS.md schema tables *and* the
//!   module's own rustdoc tables.
//! * `spec-crate-map` — the `crates/*` workspace members on disk (and
//!   their package names) ↔ the README and ARCHITECTURE crate maps.
//! * `spec-ci-jobs` — job ids in `.github/workflows/ci.yml` ↔ the CI
//!   jobs table in README's CI section.
//!
//! Each check runs only when its primary source file exists under the
//! root, so the same pass works on the fixture mini-trees the
//! self-tests pin exit codes with.

use crate::Finding;
use std::collections::BTreeMap;
use std::path::Path;

/// Runs every conformance check whose inputs exist under `root`.
pub fn check(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    out.extend(protocol_tags(root)?);
    out.extend(telemetry_schema(root)?);
    out.extend(crate_map(root)?);
    out.extend(ci_jobs(root)?);
    Ok(out)
}

fn read_if_exists(root: &Path, rel: &str) -> std::io::Result<Option<String>> {
    let path = root.join(rel);
    if path.is_file() {
        std::fs::read_to_string(path).map(Some)
    } else {
        Ok(None)
    }
}

fn finding(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        message,
    }
}

/// `REQ_REGISTER_QOS` → `registerqos`, for comparison against the
/// backticked variant names in PROTOCOL.md (`RegisterQos`).
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| *c != '_')
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// First backtick-quoted span on `s`, if any.
fn backticked(s: &str) -> Option<&str> {
    let open = s.find('`')?;
    let rest = &s[open + 1..];
    let close = rest.find('`')?;
    Some(&rest[..close])
}

/// Splits a markdown table row into trimmed cells (empty edge cells
/// from the leading/trailing `|` dropped).
fn row_cells(line: &str) -> Vec<&str> {
    let trimmed = line.trim();
    if !trimmed.starts_with('|') {
        return Vec::new();
    }
    trimmed
        .trim_matches('|')
        .split('|')
        .map(str::trim)
        .collect()
}

// ---------------------------------------------------------------------------
// spec-protocol-tags
// ---------------------------------------------------------------------------

const BINARY_RS: &str = "crates/server/src/binary.rs";
const PROTOCOL_MD: &str = "PROTOCOL.md";

fn protocol_tags(root: &Path) -> std::io::Result<Vec<Finding>> {
    let Some(binary) = read_if_exists(root, BINARY_RS)? else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    let Some(protocol) = read_if_exists(root, PROTOCOL_MD)? else {
        out.push(finding(
            BINARY_RS,
            1,
            "spec-protocol-tags",
            "binary codec exists but PROTOCOL.md is missing — the wire format must stay specified"
                .to_string(),
        ));
        return Ok(out);
    };

    // Code side: `const REQ_…: u8 = 0xNN;` grouped by prefix.
    // name → (value, line), per table.
    let mut code: [BTreeMap<String, (u8, u32)>; 3] =
        [BTreeMap::new(), BTreeMap::new(), BTreeMap::new()];
    for (idx, line) in binary.lines().enumerate() {
        let l = line.trim();
        let Some(rest) = l.strip_prefix("const ") else {
            continue;
        };
        let Some((name, tail)) = rest.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let table = if name.starts_with("REQ_") {
            0
        } else if name.starts_with("RESP_") {
            1
        } else if name.starts_with("ERR_") {
            2
        } else {
            continue;
        };
        let Some(value) = tail
            .split_once("0x")
            .and_then(|(_, hex)| u8::from_str_radix(hex.trim_end_matches(';').trim(), 16).ok())
        else {
            continue;
        };
        let short = name.split_once('_').map_or(name, |(_, rest)| rest);
        code[table].insert(normalize(short), (value, idx as u32 + 1));
    }

    // Doc side: the three tag tables, recognized by their header rows.
    let mut doc: [BTreeMap<String, (u8, u32)>; 3] =
        [BTreeMap::new(), BTreeMap::new(), BTreeMap::new()];
    let mut mode: Option<usize> = None;
    let mut collected = 0usize;
    for (idx, line) in protocol.lines().enumerate() {
        if line.contains("Error codes under tag") {
            mode = Some(2);
            collected = 0;
            continue;
        }
        let cells = row_cells(line);
        if cells.len() >= 2 {
            let h0 = cells[0].to_ascii_lowercase();
            if h0 == "tag" {
                mode = match cells[1].to_ascii_lowercase().as_str() {
                    "request" => Some(0),
                    "response" => Some(1),
                    _ => None,
                };
                collected = 0;
                continue;
            }
            if h0 == "code" {
                mode = Some(2);
                collected = 0;
                continue;
            }
            if let Some(m) = mode {
                let Some(value) = backticked(cells[0])
                    .and_then(|t| t.strip_prefix("0x"))
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                else {
                    continue;
                };
                let Some(name) = backticked(cells[1]) else {
                    continue;
                };
                doc[m].insert(normalize(name), (value, idx as u32 + 1));
                collected += 1;
            }
        } else if line.trim().is_empty() && collected > 0 {
            // A table ends at the first blank line after its rows.
            mode = None;
            collected = 0;
        }
    }

    let tables = ["request", "response", "error-code"];
    for t in 0..3 {
        for (name, &(value, line)) in &code[t] {
            match doc[t].get(name) {
                None => out.push(finding(
                    BINARY_RS,
                    line,
                    "spec-protocol-tags",
                    format!(
                        "{} tag `{name}` (0x{value:02x}) is implemented but missing from the PROTOCOL.md {} table",
                        tables[t], tables[t]
                    ),
                )),
                Some(&(doc_value, doc_line)) if doc_value != value => out.push(finding(
                    PROTOCOL_MD,
                    doc_line,
                    "spec-protocol-tags",
                    format!(
                        "{} tag `{name}` documented as 0x{doc_value:02x} but implemented as 0x{value:02x} in {BINARY_RS}:{line}",
                        tables[t]
                    ),
                )),
                Some(_) => {}
            }
        }
        for (name, &(value, line)) in &doc[t] {
            if !code[t].contains_key(name) {
                out.push(finding(
                    PROTOCOL_MD,
                    line,
                    "spec-protocol-tags",
                    format!(
                        "{} tag `{name}` (0x{value:02x}) is documented but not implemented in {BINARY_RS}",
                        tables[t]
                    ),
                ));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// spec-telemetry-schema
// ---------------------------------------------------------------------------

const TELEMETRY_RS: &str = "crates/bench/src/telemetry.rs";
const BENCHMARKS_MD: &str = "BENCHMARKS.md";

/// Extracts the string literals of `pub const NAME: &[&str] = [ … ];`.
fn const_str_array(src: &str, name: &str) -> Option<(Vec<String>, u32)> {
    let mut keys = Vec::new();
    let mut line_no = 0u32;
    let mut in_array = false;
    for (idx, line) in src.lines().enumerate() {
        let scan = if !in_array {
            if line.contains(&format!("const {name}:")) {
                in_array = true;
                line_no = idx as u32 + 1;
                // Only the part after the array opener counts — the
                // type `&[&str]` on this line contains `]` itself.
                line.rsplit_once('[').map(|(_, tail)| tail).unwrap_or("")
            } else {
                continue;
            }
        } else {
            line
        };
        let mut rest = scan;
        while let Some(open) = rest.find('"') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('"') else { break };
            keys.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
        if scan.contains(']') {
            return Some((keys, line_no));
        }
    }
    None
}

/// All backticked, comma-separated keys in the first cell of every data
/// row of the markdown table whose header's first cell is `key`,
/// starting the scan at `from`. Returns (keys with line numbers, line
/// after the table).
fn doc_key_table(lines: &[&str], from: usize) -> (Vec<(String, u32)>, usize) {
    let mut keys = Vec::new();
    let mut i = from;
    // Find the header row.
    while i < lines.len() {
        let cells = row_cells(lines[i]);
        if cells.first().is_some_and(|c| c.eq_ignore_ascii_case("key")) {
            i += 1;
            break;
        }
        i += 1;
    }
    // Data rows (skipping the |---| separator) until the table ends.
    while i < lines.len() {
        let cells = row_cells(lines[i]);
        if cells.is_empty() {
            break;
        }
        if let Some(first) = cells.first() {
            let mut rest = *first;
            while let Some(open) = rest.find('`') {
                let tail = &rest[open + 1..];
                let Some(close) = tail.find('`') else { break };
                let key = tail[..close].trim();
                if !key.is_empty() && !key.contains(' ') {
                    keys.push((key.to_string(), i as u32 + 1));
                }
                rest = &tail[close + 1..];
            }
        }
        i += 1;
    }
    (keys, i)
}

/// Set comparison with findings anchored at whichever side is wrong.
fn compare_key_sets(
    out: &mut Vec<Finding>,
    code_file: &str,
    code_keys: &[String],
    code_line: u32,
    doc_file: &str,
    doc_keys: &[(String, u32)],
    what: &str,
) {
    for key in code_keys {
        if !doc_keys.iter().any(|(k, _)| k == key) {
            out.push(finding(
                code_file,
                code_line,
                "spec-telemetry-schema",
                format!("{what} key `{key}` is emitted but undocumented in {doc_file}"),
            ));
        }
    }
    for (key, line) in doc_keys {
        if !code_keys.contains(key) {
            out.push(finding(
                doc_file,
                *line,
                "spec-telemetry-schema",
                format!("{what} key `{key}` is documented but not in {code_file}"),
            ));
        }
    }
}

fn telemetry_schema(root: &Path) -> std::io::Result<Vec<Finding>> {
    let Some(telemetry) = read_if_exists(root, TELEMETRY_RS)? else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    let Some((schema, schema_line)) = const_str_array(&telemetry, "SCHEMA_KEYS") else {
        out.push(finding(
            TELEMETRY_RS,
            1,
            "spec-telemetry-schema",
            "SCHEMA_KEYS const not found — the telemetry schema must stay pinned".to_string(),
        ));
        return Ok(out);
    };
    let Some((latency, latency_line)) = const_str_array(&telemetry, "LATENCY_SCHEMA_KEYS") else {
        out.push(finding(
            TELEMETRY_RS,
            1,
            "spec-telemetry-schema",
            "LATENCY_SCHEMA_KEYS const not found — the telemetry schema must stay pinned"
                .to_string(),
        ));
        return Ok(out);
    };

    // The module's own rustdoc tables (`//! | `key` | …`).
    let doc_lines: Vec<&str> = telemetry
        .lines()
        .map(|l| l.trim_start().strip_prefix("//!").unwrap_or(""))
        .collect();
    let (rustdoc_top, after) = doc_key_table(&doc_lines, 0);
    let (rustdoc_latency, _) = doc_key_table(&doc_lines, after);
    compare_key_sets(
        &mut out,
        TELEMETRY_RS,
        &schema,
        schema_line,
        TELEMETRY_RS,
        &rustdoc_top,
        "rustdoc top-level",
    );
    compare_key_sets(
        &mut out,
        TELEMETRY_RS,
        &latency,
        latency_line,
        TELEMETRY_RS,
        &rustdoc_latency,
        "rustdoc latency",
    );

    // BENCHMARKS.md schema tables, after the telemetry-record heading.
    if let Some(bench) = read_if_exists(root, BENCHMARKS_MD)? {
        let lines: Vec<&str> = bench.lines().collect();
        let start = lines
            .iter()
            .position(|l| l.starts_with("## ") && l.contains("telemetry record"))
            .unwrap_or(0);
        let (bench_top, after) = doc_key_table(&lines, start);
        let (bench_latency, _) = doc_key_table(&lines, after);
        compare_key_sets(
            &mut out,
            TELEMETRY_RS,
            &schema,
            schema_line,
            BENCHMARKS_MD,
            &bench_top,
            "telemetry top-level",
        );
        compare_key_sets(
            &mut out,
            TELEMETRY_RS,
            &latency,
            latency_line,
            BENCHMARKS_MD,
            &bench_latency,
            "telemetry latency",
        );
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// spec-crate-map
// ---------------------------------------------------------------------------

/// `| `crates/dir` | `pkg` | …` rows of a doc's crate map.
fn doc_crate_rows(src: &str) -> Vec<(String, String, u32)> {
    let mut rows = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let cells = row_cells(line);
        if cells.len() < 2 {
            continue;
        }
        let Some(path) = backticked(cells[0]) else {
            continue;
        };
        let Some(dir) = path.strip_prefix("crates/") else {
            continue;
        };
        let Some(pkg) = backticked(cells[1]) else {
            continue;
        };
        rows.push((dir.to_string(), pkg.to_string(), idx as u32 + 1));
    }
    rows
}

/// Package name from a crate's `Cargo.toml`.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let l = line.trim();
        if l.starts_with('[') {
            in_package = l == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = l.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

fn crate_map(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Ok(Vec::new());
    }
    // Disk truth: crates/<dir> → package name.
    let mut members: BTreeMap<String, String> = BTreeMap::new();
    let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        if !entry.path().is_dir() {
            continue;
        }
        let dir = entry.file_name().to_string_lossy().into_owned();
        // A directory without a manifest is not a workspace member
        // (lint fixtures are shaped this way on purpose).
        let manifest_path = entry.path().join("Cargo.toml");
        if !manifest_path.is_file() {
            continue;
        }
        let manifest = std::fs::read_to_string(manifest_path)?;
        let pkg = package_name(&manifest).unwrap_or_else(|| dir.clone());
        members.insert(dir, pkg);
    }

    let mut out = Vec::new();
    for doc in ["README.md", "ARCHITECTURE.md"] {
        let Some(src) = read_if_exists(root, doc)? else {
            continue;
        };
        let rows = doc_crate_rows(&src);
        if rows.is_empty() {
            continue; // the doc has no crate map to check
        }
        for (dir, pkg) in &members {
            match rows.iter().find(|(d, _, _)| d == dir) {
                None => out.push(finding(
                    doc,
                    1,
                    "spec-crate-map",
                    format!("workspace member `crates/{dir}` has no row in the {doc} crate map"),
                )),
                Some((_, doc_pkg, line)) if doc_pkg != pkg => out.push(finding(
                    doc,
                    *line,
                    "spec-crate-map",
                    format!(
                        "crate map lists `crates/{dir}` as package `{doc_pkg}` but its Cargo.toml says `{pkg}`"
                    ),
                )),
                Some(_) => {}
            }
        }
        for (dir, _, line) in &rows {
            if !members.contains_key(dir) {
                out.push(finding(
                    doc,
                    *line,
                    "spec-crate-map",
                    format!("crate map row `crates/{dir}` does not exist in the workspace"),
                ));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// spec-ci-jobs
// ---------------------------------------------------------------------------

const CI_YML: &str = ".github/workflows/ci.yml";

/// Top-level job ids of the workflow: two-space-indented keys after
/// `jobs:`.
fn workflow_jobs(src: &str) -> Vec<(String, u32)> {
    let mut jobs = Vec::new();
    let mut in_jobs = false;
    for (idx, line) in src.lines().enumerate() {
        if line.trim_end() == "jobs:" {
            in_jobs = true;
            continue;
        }
        if !in_jobs {
            continue;
        }
        if !line.starts_with(' ') && !line.trim().is_empty() {
            break; // next top-level key
        }
        let Some(rest) = line.strip_prefix("  ") else {
            continue;
        };
        if rest.starts_with(' ') || rest.starts_with('#') {
            continue;
        }
        if let Some(name) = rest.trim_end().strip_suffix(':') {
            if name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                jobs.push((name.to_string(), idx as u32 + 1));
            }
        }
    }
    jobs
}

/// The README CI jobs table: `| `job` | …` rows inside the `## CI`
/// section.
fn readme_ci_jobs(src: &str) -> Vec<(String, u32)> {
    let mut jobs = Vec::new();
    let mut in_ci = false;
    for (idx, line) in src.lines().enumerate() {
        if line.starts_with("## ") {
            in_ci = line.trim() == "## CI";
            continue;
        }
        if !in_ci {
            continue;
        }
        let cells = row_cells(line);
        if cells.len() < 2 {
            continue;
        }
        if cells[0].eq_ignore_ascii_case("job") {
            continue;
        }
        if let Some(job) = backticked(cells[0]) {
            jobs.push((job.to_string(), idx as u32 + 1));
        }
    }
    jobs
}

fn ci_jobs(root: &Path) -> std::io::Result<Vec<Finding>> {
    let Some(workflow) = read_if_exists(root, CI_YML)? else {
        return Ok(Vec::new());
    };
    let Some(readme) = read_if_exists(root, "README.md")? else {
        return Ok(Vec::new());
    };
    let jobs = workflow_jobs(&workflow);
    let documented = readme_ci_jobs(&readme);
    let mut out = Vec::new();
    if documented.is_empty() {
        out.push(finding(
            "README.md",
            1,
            "spec-ci-jobs",
            format!("README has no CI jobs table binding it to {CI_YML} — add one under `## CI`"),
        ));
        return Ok(out);
    }
    for (job, line) in &jobs {
        if !documented.iter().any(|(j, _)| j == job) {
            out.push(finding(
                CI_YML,
                *line,
                "spec-ci-jobs",
                format!("CI job `{job}` is not listed in the README CI jobs table"),
            ));
        }
    }
    for (job, line) in &documented {
        if !jobs.iter().any(|(j, _)| j == job) {
            out.push(finding(
                "README.md",
                *line,
                "spec-ci-jobs",
                format!("README lists CI job `{job}` which does not exist in {CI_YML}"),
            ));
        }
    }
    Ok(out)
}
