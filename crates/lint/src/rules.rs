//! Layer 1 — source lints over the token stream.
//!
//! Every rule here matches *code* tokens only: the lexer has already
//! fenced off strings, raw strings, char literals and comments, so a
//! `"unwrap()"` inside a log message or an `unsafe` in prose never
//! fires. Panic- and determinism-rules additionally skip `#[cfg(test)]`
//! / `#[test]` items — tests may unwrap freely.

use crate::lexer::{self, Kind, Token};
use crate::{classify, Finding, Suppression};

/// Every rule id the suppression syntax accepts.
pub const RULE_IDS: &[&str] = &[
    "det-wall-clock",
    "det-env",
    "det-unordered-iter",
    "panic-unwrap",
    "panic-macro",
    "panic-index",
    "unsafe-outside-polling",
    "forbid-unsafe-missing",
    "spec-protocol-tags",
    "spec-telemetry-schema",
    "spec-crate-map",
    "spec-ci-jobs",
];

/// HashMap/HashSet methods whose visit order is unspecified.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [0u8; 4]`, `return [a, b]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "return", "in", "as", "else", "match", "if", "while", "loop", "move", "box",
    "dyn", "impl", "where", "break", "continue", "const", "static", "let", "yield",
];

/// Findings and suppressions for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppression.
    pub findings: Vec<Finding>,
    /// Valid suppressions found in the file (used or not).
    pub suppressions: Vec<Suppression>,
}

/// Runs every applicable source lint over one file.
pub fn check_file(rel: &str, src: &str) -> FileReport {
    let role = classify(rel);
    let toks = lexer::lex(src);
    let code: Vec<Token> = toks
        .iter()
        .copied()
        .filter(|t| !matches!(t.kind, Kind::LineComment | Kind::BlockComment))
        .collect();
    let tests = test_regions(&code, src);
    let in_test = |t: &Token| tests.iter().any(|&(s, e)| t.start >= s && t.start < e);

    let mut raw: Vec<Finding> = Vec::new();
    if role.sim {
        raw.extend(det_wall_clock(rel, src, &code, &in_test));
        raw.extend(det_env(rel, src, &code, &in_test));
        raw.extend(det_unordered_iter(rel, src, &code, &in_test));
    }
    if role.hot {
        raw.extend(panic_unwrap(rel, src, &code, &in_test));
        raw.extend(panic_macro(rel, src, &code, &in_test));
    }
    if role.decode {
        raw.extend(panic_index(rel, src, &code, &in_test));
    }
    if !role.unsafe_ok {
        raw.extend(unsafe_outside(rel, src, &code));
    }
    if role.crate_root {
        raw.extend(forbid_missing(rel, src, &code));
    }

    let (mut suppressions, mut bad) = parse_suppressions(rel, src, &toks);
    // A suppression waives matching findings on its own line (trailing
    // comment) and on the line below (comment-above style).
    let mut findings = Vec::new();
    for f in raw {
        let mut waived = false;
        for s in suppressions.iter_mut() {
            if s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line) {
                s.used = true;
                waived = true;
                break;
            }
        }
        if !waived {
            findings.push(f);
        }
    }
    findings.append(&mut bad);
    FileReport {
        findings,
        suppressions,
    }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn txt<'a>(src: &'a str, t: &Token) -> &'a str {
    t.text(src)
}

fn is(src: &str, code: &[Token], i: usize, s: &str) -> bool {
    code.get(i).is_some_and(|t| txt(src, t) == s)
}

fn is_ident(code: &[Token], i: usize) -> bool {
    code.get(i).is_some_and(|t| t.kind == Kind::Ident)
}

/// `code[i]` and `code[i + 1]` spell `::`.
fn is_path_sep(src: &str, code: &[Token], i: usize) -> bool {
    is(src, code, i, ":") && is(src, code, i + 1, ":")
}

// ---------------------------------------------------------------------------
// `#[cfg(test)]` / `#[test]` regions
// ---------------------------------------------------------------------------

/// Byte ranges of items gated behind `#[cfg(test)]` (or `#[test]`):
/// from the attribute to the item's closing brace or semicolon.
fn test_regions(code: &[Token], src: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if is(src, code, i, "#") && is(src, code, i + 1, "[") {
            // Find the attribute's closing bracket.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut test_attr = false;
            let mut saw_cfg = false;
            while j < code.len() {
                match txt(src, &code[j]) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "cfg" => saw_cfg = true,
                    "test" => test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            // `#[test]` alone, or `test` anywhere inside `#[cfg(…)]`.
            let gated = test_attr && (saw_cfg || j == i + 3);
            if gated && j < code.len() {
                if let Some(end) = item_end(code, src, j + 1) {
                    regions.push((code[i].start, end));
                    // Skip past the region.
                    while i < code.len() && code[i].start < end {
                        i += 1;
                    }
                    continue;
                }
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    regions
}

/// Byte offset just past the item starting at token `i`: the matching
/// `}` of its first `{`, or the first `;` seen before any brace.
fn item_end(code: &[Token], src: &str, i: usize) -> Option<usize> {
    let mut j = i;
    while j < code.len() {
        match txt(src, &code[j]) {
            ";" => return Some(code[j].end),
            "{" => {
                let mut depth = 0usize;
                while j < code.len() {
                    match txt(src, &code[j]) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(code[j].end);
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return None;
            }
            _ => j += 1,
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Determinism rules (simulation crates)
// ---------------------------------------------------------------------------

fn det_wall_clock(
    rel: &str,
    src: &str,
    code: &[Token],
    in_test: &dyn Fn(&Token) -> bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != Kind::Ident || in_test(t) {
            continue;
        }
        let name = txt(src, t);
        if (name == "Instant" || name == "SystemTime")
            && is_path_sep(src, code, i + 1)
            && is(src, code, i + 3, "now")
        {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "det-wall-clock",
                message: format!(
                    "`{name}::now()` in a simulation crate: wall-clock reads diverge under replay — derive times from `SimTime`"
                ),
            });
        }
    }
    out
}

fn det_env(rel: &str, src: &str, code: &[Token], in_test: &dyn Fn(&Token) -> bool) -> Vec<Finding> {
    const ENV_FNS: &[&str] = &[
        "var",
        "vars",
        "var_os",
        "vars_os",
        "args",
        "args_os",
        "temp_dir",
        "current_dir",
        "set_var",
    ];
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != Kind::Ident || in_test(t) {
            continue;
        }
        let name = txt(src, t);
        let hit = (name == "std" && is_path_sep(src, code, i + 1) && is(src, code, i + 3, "env"))
            || (name == "env"
                && is_path_sep(src, code, i + 1)
                && code
                    .get(i + 3)
                    .is_some_and(|n| ENV_FNS.contains(&txt(src, n))));
        if hit {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "det-env",
                message: "process environment read in a simulation crate: replay runs in a different environment — thread configuration through `SimConfig`".to_string(),
            });
        }
    }
    out
}

fn det_unordered_iter(
    rel: &str,
    src: &str,
    code: &[Token],
    in_test: &dyn Fn(&Token) -> bool,
) -> Vec<Finding> {
    // Pass A: names bound to HashMap/HashSet in this file — struct
    // fields, fn params and annotated lets (`name: [&|mut]* Hash…`),
    // plus unannotated `let name = Hash….new()`. The tracking is
    // name-based and file-global: a heuristic, documented in
    // ARCHITECTURE.md, precise enough for this codebase.
    let mut tracked: Vec<&str> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        let name = txt(src, t);
        if name == "HashMap" || name == "HashSet" {
            // `ident : …* HashMap` — walk back over & and mut.
            let mut j = i;
            while j > 0 && matches!(txt(src, &code[j - 1]), "&" | "mut") {
                j -= 1;
            }
            if j >= 2 && is(src, code, j - 1, ":") && !is(src, code, j - 2, ":") {
                if let Some(owner) = code.get(j - 2).filter(|t| t.kind == Kind::Ident) {
                    tracked.push(txt(src, owner));
                }
            }
            // `let [mut] ident = HashMap::new()`
            if i >= 2
                && is(src, code, i - 1, "=")
                && is_path_sep(src, code, i + 1)
                && code
                    .get(i + 3)
                    .is_some_and(|m| matches!(txt(src, m), "new" | "with_capacity" | "default"))
            {
                if let Some(owner) = code.get(i - 2).filter(|t| t.kind == Kind::Ident) {
                    let kw = code.get(i.wrapping_sub(3)).map(|t| txt(src, t));
                    if matches!(kw, Some("let" | "mut")) {
                        tracked.push(txt(src, owner));
                    }
                }
            }
        }
    }
    tracked.sort_unstable();
    tracked.dedup();

    // Pass B: iteration over a tracked name.
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if in_test(t) {
            continue;
        }
        // `name.iter()`-family calls.
        if txt(src, t) == "."
            && is_ident(code, i + 1)
            && ITER_METHODS.contains(&txt(src, &code[i + 1]))
            && is(src, code, i + 2, "(")
            && i > 0
            && code[i - 1].kind == Kind::Ident
            && tracked.binary_search(&txt(src, &code[i - 1])).is_ok()
        {
            out.push(Finding {
                file: rel.to_string(),
                line: code[i + 1].line,
                rule: "det-unordered-iter",
                message: format!(
                    "`{}.{}()` iterates a Hash{{Map,Set}} in unspecified order in a simulation crate — sort first or use a BTree collection",
                    txt(src, &code[i - 1]),
                    txt(src, &code[i + 1]),
                ),
            });
        }
        // `for … in [&][mut] name {`
        if txt(src, t) == "in" && t.kind == Kind::Ident {
            let mut j = i + 1;
            while matches!(code.get(j).map(|t| txt(src, t)), Some("&" | "mut")) {
                j += 1;
            }
            if is_ident(code, j)
                && tracked.binary_search(&txt(src, &code[j])).is_ok()
                && is(src, code, j + 1, "{")
            {
                out.push(Finding {
                    file: rel.to_string(),
                    line: code[j].line,
                    rule: "det-unordered-iter",
                    message: format!(
                        "`for … in {}` iterates a Hash{{Map,Set}} in unspecified order in a simulation crate — sort first or use a BTree collection",
                        txt(src, &code[j]),
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Panic-freedom rules (server hot paths)
// ---------------------------------------------------------------------------

fn panic_unwrap(
    rel: &str,
    src: &str,
    code: &[Token],
    in_test: &dyn Fn(&Token) -> bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if txt(src, t) == "."
            && !in_test(t)
            && code
                .get(i + 1)
                .is_some_and(|n| matches!(txt(src, n), "unwrap" | "expect"))
            && is(src, code, i + 2, "(")
        {
            out.push(Finding {
                file: rel.to_string(),
                line: code[i + 1].line,
                rule: "panic-unwrap",
                message: format!(
                    "`.{}()` on the connection/dispatch path: a malformed input must cost one connection, never the reactor — handle the error and drop the connection",
                    txt(src, &code[i + 1]),
                ),
            });
        }
    }
    out
}

fn panic_macro(
    rel: &str,
    src: &str,
    code: &[Token],
    in_test: &dyn Fn(&Token) -> bool,
) -> Vec<Finding> {
    const MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind == Kind::Ident
            && !in_test(t)
            && MACROS.contains(&txt(src, t))
            && is(src, code, i + 1, "!")
        {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "panic-macro",
                message: format!(
                    "`{}!` on the connection/dispatch path can kill the reactor — return a typed error instead",
                    txt(src, t),
                ),
            });
        }
    }
    out
}

fn panic_index(
    rel: &str,
    src: &str,
    code: &[Token],
    in_test: &dyn Fn(&Token) -> bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if txt(src, t) != "[" || i == 0 || in_test(t) {
            continue;
        }
        let prev = &code[i - 1];
        let indexing = match prev.kind {
            Kind::Ident => !NON_INDEX_KEYWORDS.contains(&txt(src, prev)),
            Kind::Punct => matches!(txt(src, prev), ")" | "]"),
            _ => false,
        };
        if indexing {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "panic-index",
                message: "slice indexing while decoding untrusted bytes panics when out of bounds — use `get`/`split_at_checked` and return a typed error".to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Unsafe confinement
// ---------------------------------------------------------------------------

fn unsafe_outside(rel: &str, src: &str, code: &[Token]) -> Vec<Finding> {
    code.iter()
        .filter(|t| t.kind == Kind::Ident && txt(src, t) == "unsafe")
        .map(|t| Finding {
            file: rel.to_string(),
            line: t.line,
            rule: "unsafe-outside-polling",
            message: "`unsafe` outside `compat/polling` — the poll(2) shim is the only crate allowed to talk to the OS unsafely".to_string(),
        })
        .collect()
}

fn forbid_missing(rel: &str, src: &str, code: &[Token]) -> Vec<Finding> {
    let has = code.windows(8).any(|w| {
        txt(src, &w[0]) == "#"
            && txt(src, &w[1]) == "!"
            && txt(src, &w[2]) == "["
            && txt(src, &w[3]) == "forbid"
            && txt(src, &w[4]) == "("
            && txt(src, &w[5]) == "unsafe_code"
            && txt(src, &w[6]) == ")"
            && txt(src, &w[7]) == "]"
    });
    if has {
        Vec::new()
    } else {
        vec![Finding {
            file: rel.to_string(),
            line: 1,
            rule: "forbid-unsafe-missing",
            message: "crate root lacks `#![forbid(unsafe_code)]` — every crate except compat/polling must forbid unsafe at the root".to_string(),
        }]
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Parses `// spq-lint: allow(rule-id) — reason` comments. Returns the
/// valid suppressions and a finding for each malformed one (missing or
/// empty reason, unknown rule id) — malformed suppressions are ignored,
/// loudly.
fn parse_suppressions(rel: &str, src: &str, toks: &[Token]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for t in toks {
        if t.kind != Kind::LineComment {
            continue;
        }
        let text = txt(src, t);
        // Suppressions live in plain `//` comments only: doc comments
        // (`///`, `//!`) merely *describe* the syntax.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(at) = text.find("spq-lint:") else {
            continue;
        };
        let rest = text[at + "spq-lint:".len()..].trim_start();
        let mut fail = |msg: String| {
            bad.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "lint-bad-suppression",
                message: msg,
            });
        };
        let Some(body) = rest.strip_prefix("allow(") else {
            fail("malformed suppression: expected `spq-lint: allow(rule-id) — reason`".to_string());
            continue;
        };
        let Some(close) = body.find(')') else {
            fail("malformed suppression: unclosed `allow(`".to_string());
            continue;
        };
        let rule = body[..close].trim();
        if !RULE_IDS.contains(&rule) {
            fail(format!("suppression names unknown rule `{rule}`"));
            continue;
        }
        let reason = body[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'))
            .trim();
        if reason.is_empty() {
            fail(format!(
                "suppression of `{rule}` has no reason — `spq-lint: allow({rule}) — <why>` is required"
            ));
            continue;
        }
        ok.push(Suppression {
            file: rel.to_string(),
            line: t.line,
            rule: rule.to_string(),
            reason: reason.to_string(),
            used: false,
        });
    }
    (ok, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: &str = "crates/core/src/synthetic.rs";
    const HOT: &str = "crates/server/src/server.rs";
    const DECODE: &str = "crates/server/src/frame.rs";

    fn fire(rel: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_file(rel, src)
            .findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn determinism_rules_fire_in_sim_crates_only() {
        let src = "fn f() -> u64 {\n    let t = Instant::now();\n    let v = std::env::var(\"X\");\n    0\n}\n";
        let hits = fire(SIM, src);
        assert!(hits.contains(&("det-wall-clock", 2)), "{hits:?}");
        assert!(hits.contains(&("det-env", 3)), "{hits:?}");
        // The same source in a non-sim, non-hot crate is clean.
        assert!(fire("crates/bench/src/synthetic.rs", src).is_empty());
    }

    #[test]
    fn unordered_iteration_is_tracked_by_declared_name() {
        let src = "struct S { map: HashMap<u64, u32> }\nimpl S {\n    fn sum(&self) -> u32 {\n        self.map.values().sum()\n    }\n    fn walk(map: HashMap<u64, u32>) {\n        for kv in &map {}\n    }\n    fn fine(v: Vec<u32>) -> u32 {\n        v.iter().sum()\n    }\n}\n";
        let hits = fire(SIM, src);
        assert!(hits.contains(&("det-unordered-iter", 4)), "{hits:?}");
        assert!(hits.contains(&("det-unordered-iter", 7)), "{hits:?}");
        // `v` is a Vec: iteration order is defined, nothing fires there.
        assert_eq!(
            hits.iter()
                .filter(|(r, _)| *r == "det-unordered-iter")
                .count(),
            2,
            "{hits:?}"
        );
    }

    #[test]
    fn panic_rules_fire_on_hot_and_decode_paths() {
        let src = "pub fn decode(buf: &[u8]) -> u8 {\n    let first = buf.iter().next().unwrap();\n    if *first > 9 { panic!(\"bad\") }\n    buf[0]\n}\n";
        let hits = fire(DECODE, src);
        assert!(hits.contains(&("panic-unwrap", 2)), "{hits:?}");
        assert!(hits.contains(&("panic-macro", 3)), "{hits:?}");
        assert!(hits.contains(&("panic-index", 4)), "{hits:?}");
        // The hot-but-not-decode role skips the indexing rule.
        let hot = fire(HOT, src);
        assert!(hot.contains(&("panic-unwrap", 2)));
        assert!(!hot.iter().any(|(r, _)| *r == "panic-index"), "{hot:?}");
    }

    #[test]
    fn strings_comments_and_tests_never_fire() {
        let src = "fn f() {\n    let s = \"Instant::now() .unwrap() unsafe panic!\";\n    // Instant::now() and .unwrap() in prose\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = std::env::var(\"H\").unwrap();\n        panic!(\"tests may\");\n    }\n}\n";
        assert!(fire(SIM, src).is_empty());
        assert!(fire(HOT, src).is_empty());
    }

    #[test]
    fn suppression_with_reason_waives_exactly_one_line() {
        let src = "fn f() {\n    // spq-lint: allow(panic-unwrap) — provably infallible here\n    let x = y.unwrap();\n    let z = q.unwrap();\n}\n";
        let report = check_file(HOT, src);
        let hits: Vec<_> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(hits, vec![("panic-unwrap", 4)], "{hits:?}");
        assert_eq!(report.suppressions.len(), 1);
        assert!(report.suppressions.iter().all(|s| s.used));
    }

    #[test]
    fn bad_suppressions_are_findings_not_waivers() {
        let missing_reason = "// spq-lint: allow(panic-unwrap)\nfn f() { y.unwrap(); }\n";
        let hits = fire(HOT, missing_reason);
        assert!(hits.contains(&("lint-bad-suppression", 1)), "{hits:?}");
        assert!(hits.contains(&("panic-unwrap", 2)), "not waived: {hits:?}");

        let unknown_rule = "// spq-lint: allow(no-such-rule) — because\nfn f() { y.unwrap(); }\n";
        let hits = fire(HOT, unknown_rule);
        assert!(hits.contains(&("lint-bad-suppression", 1)), "{hits:?}");
        assert!(hits.contains(&("panic-unwrap", 2)), "{hits:?}");

        // Doc comments describing the syntax are not suppressions.
        let doc = "/// spq-lint: allow(panic-unwrap) — example\nfn f() {}\n";
        let report = check_file(HOT, doc);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.suppressions.is_empty());
    }

    #[test]
    fn unsafe_confinement_and_forbid_attribute() {
        let lib_no_forbid = "pub fn free() {}\n";
        let hits = fire("crates/other/src/lib.rs", lib_no_forbid);
        assert_eq!(hits, vec![("forbid-unsafe-missing", 1)]);

        let lib_ok = "#![forbid(unsafe_code)]\npub fn free() {}\n";
        assert!(fire("crates/other/src/lib.rs", lib_ok).is_empty());

        let uses_unsafe =
            "#![forbid(unsafe_code)]\npub fn f() { let x = \"safe\"; }\nunsafe fn g() {}\n";
        let hits = fire("crates/other/src/lib.rs", uses_unsafe);
        assert_eq!(hits, vec![("unsafe-outside-polling", 3)]);
        // compat/polling is the sanctioned home for unsafe.
        assert!(fire("compat/polling/src/lib.rs", uses_unsafe).is_empty());
    }
}
