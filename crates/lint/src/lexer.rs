//! A small hand-rolled Rust lexer — just enough token structure for the
//! source lints to tell *code* apart from the places where lint trigger
//! words legitimately appear: string literals (`"unwrap()"`), raw
//! strings (`r#"unsafe"#`), char literals, and both comment styles.
//!
//! The scanner is total: any input produces a token stream, never a
//! panic (pinned by a proptest over arbitrary byte soup), and lexing is
//! prefix-stable — truncating the input at any token boundary yields
//! exactly the tokens before that boundary (also proptested). Malformed
//! input degrades gracefully: an unterminated string or comment simply
//! extends to end of input as one token.

/// Token classes. The lexer does not distinguish keywords from
/// identifiers — rules match on the token text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// Numeric literal (integer or float; suffixes included).
    Number,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"` — escapes and hash-guards handled.
    Str,
    /// Char or byte-char literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime such as `'a` (no closing quote).
    Lifetime,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting honored; unterminated runs to end of input.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: kind plus the byte span and 1-based start line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Restorable scan position: byte offset + line counter.
#[derive(Clone, Copy)]
struct Pos {
    at: usize,
    line: u32,
}

struct Cursor<'a> {
    src: &'a str,
    pos: Pos,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            pos: Pos { at: 0, line: 1 },
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos.at..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos.at..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos.at += c.len_utf8();
        if c == '\n' {
            self.pos.line += 1;
        }
        Some(c)
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a complete token stream. Total: never panics,
/// whatever the input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    loop {
        // Skip whitespace between tokens.
        while matches!(cur.peek(), Some(c) if c.is_whitespace()) {
            cur.bump();
        }
        let start = cur.pos;
        let Some(c) = cur.peek() else { break };
        let kind = scan_token(&mut cur, c);
        debug_assert!(cur.pos.at > start.at, "scanner must always advance");
        out.push(Token {
            kind,
            start: start.at,
            end: cur.pos.at,
            line: start.line,
        });
    }
    out
}

/// Scans one token starting at `c` (the current peek). Always advances.
fn scan_token(cur: &mut Cursor<'_>, c: char) -> Kind {
    match c {
        '/' => match cur.peek2() {
            Some('/') => {
                while matches!(cur.peek(), Some(ch) if ch != '\n') {
                    cur.bump();
                }
                Kind::LineComment
            }
            Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match cur.bump() {
                        Some('*') if cur.peek() == Some('/') => {
                            cur.bump();
                            depth -= 1;
                        }
                        Some('/') if cur.peek() == Some('*') => {
                            cur.bump();
                            depth += 1;
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                Kind::BlockComment
            }
            _ => {
                cur.bump();
                Kind::Punct
            }
        },
        '"' => {
            cur.bump();
            scan_string_body(cur);
            Kind::Str
        }
        '\'' => scan_quote(cur),
        'r' | 'b' | 'c' => scan_literal_prefix(cur),
        _ if is_ident_start(c) => {
            scan_ident(cur);
            Kind::Ident
        }
        _ if c.is_ascii_digit() => {
            scan_number(cur);
            Kind::Number
        }
        _ => {
            cur.bump();
            Kind::Punct
        }
    }
}

/// Consumes the body of a `"`-delimited string; the opening quote is
/// already consumed. Unterminated bodies run to end of input.
fn scan_string_body(cur: &mut Cursor<'_>) {
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw-string body `#…#"…"#…#` given `hashes` guard hashes;
/// the leading hashes and opening quote are already consumed.
fn scan_raw_body(cur: &mut Cursor<'_>, hashes: usize) {
    'outer: while let Some(ch) = cur.bump() {
        if ch == '"' {
            let save = cur.pos;
            for _ in 0..hashes {
                if !cur.eat('#') {
                    cur.pos = save;
                    continue 'outer;
                }
            }
            break;
        }
    }
}

/// Disambiguates `'`: char literal, lifetime, or a lone quote punct.
fn scan_quote(cur: &mut Cursor<'_>) -> Kind {
    cur.bump(); // the quote
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume until the closing quote or
            // end of line — bounded, never panics on garbage like '\.
            cur.bump();
            cur.bump(); // the escaped char, if any
            while matches!(cur.peek(), Some(ch) if ch != '\'' && ch != '\n') {
                cur.bump();
            }
            cur.eat('\'');
            Kind::Char
        }
        Some(ch) if is_ident_start(ch) => {
            cur.bump();
            if cur.eat('\'') {
                Kind::Char // 'a'
            } else {
                while matches!(cur.peek(), Some(c2) if is_ident_continue(c2)) {
                    cur.bump();
                }
                Kind::Lifetime // 'a as in &'a
            }
        }
        Some(ch) if ch != '\'' && ch != '\n' => {
            // '?' — a non-identifier char: a char literal iff the very
            // next char closes it, else the quote stands alone.
            let save = cur.pos;
            cur.bump();
            if cur.eat('\'') {
                Kind::Char
            } else {
                cur.pos = save;
                Kind::Punct
            }
        }
        _ => Kind::Punct,
    }
}

/// Handles `r` / `b` / `c`, which may begin a literal (`r"…"`, `r#"…"#`,
/// `b'x'`, `br#"…"#`, `c"…"`, raw identifiers `r#ident`) or be a plain
/// identifier. Backtracks to plain-identifier scanning when no literal
/// form matches.
fn scan_literal_prefix(cur: &mut Cursor<'_>) -> Kind {
    let start = cur.pos;
    let first = cur.bump().unwrap_or('r');
    // Byte / c-string prefixes may chain a raw marker: br"…", cr#"…"#.
    let raw = if first == 'r' {
        true
    } else {
        // b or c: an immediate quote form?
        match cur.peek() {
            Some('"') => {
                cur.bump();
                scan_string_body(cur);
                return Kind::Str;
            }
            Some('\'') if first == 'b' => {
                return scan_quote(cur);
            }
            Some('r') => {
                cur.bump();
                true
            }
            _ => false,
        }
    };
    if raw {
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            cur.bump();
            hashes += 1;
        }
        if cur.peek() == Some('"') {
            cur.bump();
            scan_raw_body(cur, hashes);
            return Kind::Str;
        }
        // `r#ident` raw identifier: exactly one hash then ident chars.
        if first == 'r' && hashes == 1 && matches!(cur.peek(), Some(ch) if is_ident_start(ch)) {
            scan_ident(cur);
            return Kind::Ident;
        }
    }
    // No literal form: rewind and lex a plain identifier.
    cur.pos = start;
    cur.bump();
    scan_ident(cur);
    Kind::Ident
}

fn scan_ident(cur: &mut Cursor<'_>) {
    while matches!(cur.peek(), Some(ch) if is_ident_continue(ch)) {
        cur.bump();
    }
}

/// Numbers: digits, `_`, alphanumeric suffixes, and a `.` only when a
/// digit follows (so `0..5` lexes as number, punct, punct, number).
fn scan_number(cur: &mut Cursor<'_>) {
    cur.bump();
    loop {
        match cur.peek() {
            Some(ch) if ch == '_' || ch.is_alphanumeric() => {
                cur.bump();
            }
            Some('.') if matches!(cur.peek2(), Some(d) if d.is_ascii_digit()) => {
                cur.bump();
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn trigger_words_inside_strings_are_one_str_token() {
        let src = r#"let s = "x.unwrap() and unsafe { panic!() }";"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == Kind::Str && t.contains("unwrap")));
        // No Ident token carries the trigger words.
        assert!(
            !toks
                .iter()
                .any(|(k, t)| *k == Kind::Ident
                    && (*t == "unwrap" || *t == "unsafe" || *t == "panic"))
        );
    }

    #[test]
    fn comments_swallow_trigger_words() {
        let src = "// unsafe unwrap()\n/* panic! /* nested unsafe */ still */ code";
        let toks = kinds(src);
        assert_eq!(toks[0].0, Kind::LineComment);
        assert_eq!(toks[1].0, Kind::BlockComment);
        assert!(toks[1].1.contains("nested unsafe"), "nesting honored");
        assert_eq!(toks[2], (Kind::Ident, "code"));
    }

    #[test]
    fn raw_strings_respect_hash_guards() {
        let src = r###"let s = r#"inner " quote unsafe"# ;"###;
        let toks = kinds(src);
        let s = toks.iter().find(|(k, _)| *k == Kind::Str).expect("str");
        assert!(s.1.starts_with("r#\"") && s.1.ends_with("\"#"));
        assert!(s.1.contains("unsafe"));
        // Byte and c-string prefixes too.
        assert_eq!(kinds(r#"b"bytes""#)[0].0, Kind::Str);
        assert_eq!(kinds(r###"br##"x"##"###)[0].0, Kind::Str);
        assert_eq!(kinds(r#"c"cstr""#)[0].0, Kind::Str);
    }

    #[test]
    fn char_literals_lifetimes_and_raw_idents_disambiguate() {
        assert_eq!(kinds("'a'")[0].0, Kind::Char);
        assert_eq!(kinds(r"'\n'")[0].0, Kind::Char);
        assert_eq!(kinds("b'x'")[0].0, Kind::Char);
        assert_eq!(kinds("&'a str")[1].0, Kind::Lifetime);
        assert_eq!(kinds("r#type")[0], (Kind::Ident, "r#type"));
        // `r` alone is a plain identifier, not a stuck raw-string scan.
        assert_eq!(kinds("r + 1")[0], (Kind::Ident, "r"));
    }

    #[test]
    fn ranges_do_not_glue_into_float_literals() {
        let toks = kinds("0..5");
        assert_eq!(
            toks,
            vec![
                (Kind::Number, "0"),
                (Kind::Punct, "."),
                (Kind::Punct, "."),
                (Kind::Number, "5"),
            ]
        );
        assert_eq!(kinds("1.5e3_f64")[0], (Kind::Number, "1.5e3_f64"));
    }

    #[test]
    fn unterminated_literals_extend_to_eof_without_panicking() {
        for src in ["\"never closed", "r#\"still open", "/* no close", "'\\"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines_in_tokens() {
        let src = "a\n\"two\nlines\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2, "string starts on line 2");
        assert_eq!(toks[2].line, 4, "the embedded newline counts");
    }
}
