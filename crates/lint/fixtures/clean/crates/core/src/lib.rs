#![forbid(unsafe_code)]

use std::collections::HashMap;

pub fn tick(counts: HashMap<u64, u32>) -> u32 {
    // spq-lint: allow(det-unordered-iter) — u32 addition is commutative
    counts.values().sum()
}
