pub fn fine() {}

unsafe fn reinterpret() {}
