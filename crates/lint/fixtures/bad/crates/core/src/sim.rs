use std::collections::HashMap;
use std::time::Instant;

fn wall() -> Instant {
    Instant::now()
}

fn seed() -> String {
    std::env::var("SPQ_SEED").unwrap_or_default()
}

fn total(map: HashMap<u64, u32>) -> u32 {
    map.values().sum()
}

// spq-lint: allow(det-wall-clock)
fn suppressed_without_reason() -> u32 {
    0
}
