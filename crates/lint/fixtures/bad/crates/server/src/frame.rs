pub fn decode(buf: &[u8]) -> u8 {
    let first = buf.iter().next().unwrap();
    if *first > 9 {
        panic!("bad byte");
    }
    buf[0]
}
