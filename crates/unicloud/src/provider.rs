//! IaaS provider descriptions.
//!
//! SpeQuloS reaches clouds through the libcloud library so that one code
//! path drives every IaaS technology the EDGI deployment offers (§3.7):
//! Amazon EC2 and Eucalyptus, Rackspace, OpenNebula and StratusLab (OCCI),
//! Nimbus, plus a custom driver the authors wrote for Grid'5000. The
//! presets here model what differs between them for the simulation:
//! instance boot latency, node power, and capacity limits.

use simcore::SimDuration;

/// Static description of an IaaS cloud service.
#[derive(Clone, Debug, PartialEq)]
pub struct ProviderSpec {
    /// Provider name as in the paper.
    pub name: &'static str,
    /// Cloud technology family (for reports).
    pub technology: Technology,
    /// Delay between a start order and the worker computing (instance
    /// scheduling + boot + middleware worker start-up).
    pub boot_delay: SimDuration,
    /// Mean instance power, instructions per second (Table 2 models cloud
    /// nodes at 3× desktop-grid power).
    pub power_mean: f64,
    /// Instance power standard deviation.
    pub power_std: f64,
    /// Maximum simultaneously running instances SpeQuloS may hold on this
    /// provider (`None` = unbounded, e.g. public EC2).
    pub max_instances: Option<u32>,
}

/// IaaS technology families supported through the unified driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Amazon EC2 API (EC2 itself and Eucalyptus private clouds).
    Ec2Compatible,
    /// Rackspace commercial cloud.
    Rackspace,
    /// Open Cloud Computing Interface (OpenNebula, StratusLab).
    Occi,
    /// Nimbus science cloud.
    Nimbus,
    /// Grid'5000 used as an IaaS cloud (custom libcloud driver, §3.7).
    Grid5000,
}

impl ProviderSpec {
    /// Amazon EC2: commercial, effectively unbounded capacity, fast boot.
    pub fn amazon_ec2() -> Self {
        ProviderSpec {
            name: "Amazon EC2",
            technology: Technology::Ec2Compatible,
            boot_delay: SimDuration::from_secs(120),
            power_mean: 3000.0,
            power_std: 300.0,
            max_instances: None,
        }
    }

    /// Eucalyptus: EC2-compatible private cloud, modest capacity.
    pub fn eucalyptus() -> Self {
        ProviderSpec {
            name: "Eucalyptus",
            technology: Technology::Ec2Compatible,
            boot_delay: SimDuration::from_secs(180),
            power_mean: 3000.0,
            power_std: 300.0,
            max_instances: Some(64),
        }
    }

    /// Rackspace commercial cloud.
    pub fn rackspace() -> Self {
        ProviderSpec {
            name: "Rackspace",
            technology: Technology::Rackspace,
            boot_delay: SimDuration::from_secs(240),
            power_mean: 3000.0,
            power_std: 300.0,
            max_instances: None,
        }
    }

    /// OpenNebula private cloud (OCCI), as deployed for SZTAKI's DG.
    pub fn opennebula() -> Self {
        ProviderSpec {
            name: "OpenNebula",
            technology: Technology::Occi,
            boot_delay: SimDuration::from_secs(180),
            power_mean: 3000.0,
            power_std: 150.0,
            max_instances: Some(32),
        }
    }

    /// StratusLab (OCCI), the cloud supporting XW@LAL in the EDGI
    /// deployment (§5).
    pub fn stratuslab() -> Self {
        ProviderSpec {
            name: "StratusLab",
            technology: Technology::Occi,
            boot_delay: SimDuration::from_secs(180),
            power_mean: 3000.0,
            power_std: 150.0,
            max_instances: Some(32),
        }
    }

    /// Nimbus science cloud.
    pub fn nimbus() -> Self {
        ProviderSpec {
            name: "Nimbus",
            technology: Technology::Nimbus,
            boot_delay: SimDuration::from_secs(300),
            power_mean: 3000.0,
            power_std: 300.0,
            max_instances: Some(32),
        }
    }

    /// Grid'5000 used as an IaaS cloud through the custom driver.
    pub fn grid5000() -> Self {
        ProviderSpec {
            name: "Grid5000",
            technology: Technology::Grid5000,
            boot_delay: SimDuration::from_secs(90),
            power_mean: 3000.0,
            power_std: 0.0,
            max_instances: Some(200),
        }
    }

    /// All presets.
    pub fn all() -> Vec<ProviderSpec> {
        vec![
            Self::amazon_ec2(),
            Self::eucalyptus(),
            Self::rackspace(),
            Self::opennebula(),
            Self::stratuslab(),
            Self::nimbus(),
            Self::grid5000(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_well_formed() {
        for p in ProviderSpec::all() {
            assert!(!p.name.is_empty());
            assert!(!p.boot_delay.is_zero());
            assert!(p.power_mean > 0.0);
            assert!(p.power_std >= 0.0);
            if let Some(m) = p.max_instances {
                assert!(m > 0);
            }
        }
    }

    #[test]
    fn grid5000_is_homogeneous() {
        assert_eq!(ProviderSpec::grid5000().power_std, 0.0);
    }
}
