//! Unified cloud driver: instance lifecycle and CPU·hour metering.
//!
//! Models the slice of libcloud SpeQuloS uses (§3.6): start an instance,
//! stop an instance, and know what is running — plus the metering the
//! Credit System bills from (1 CPU·hour of cloud worker = 15 credits,
//! §3.3). Instances are billed from the start order to the stop order,
//! boot time included, as IaaS providers do.

use crate::provider::ProviderSpec;
use simcore::SimTime;
use std::collections::HashMap;

/// Identifier of a cloud instance within one driver.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// Lifecycle state of an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceState {
    /// Ordered, still booting (until `ready_at`).
    Booting,
    /// Computing-capable.
    Running,
    /// Stopped; retains its billing record.
    Stopped,
}

#[derive(Clone, Debug)]
struct Instance {
    started_at: SimTime,
    ready_at: SimTime,
    stopped_at: Option<SimTime>,
}

/// Errors from driver operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloudError {
    /// The provider's instance cap would be exceeded.
    CapacityExceeded,
    /// Unknown instance id.
    NoSuchInstance,
    /// The instance is already stopped.
    AlreadyStopped,
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::CapacityExceeded => write!(f, "provider capacity exceeded"),
            CloudError::NoSuchInstance => write!(f, "no such instance"),
            CloudError::AlreadyStopped => write!(f, "instance already stopped"),
        }
    }
}

impl std::error::Error for CloudError {}

/// A connection to one IaaS cloud service.
#[derive(Clone, Debug)]
pub struct CloudDriver {
    spec: ProviderSpec,
    instances: HashMap<u64, Instance>,
    next_id: u64,
    active: u32,
    /// Closed billing, milliseconds.
    billed_ms: u64,
}

impl CloudDriver {
    /// Connects to a provider.
    pub fn new(spec: ProviderSpec) -> Self {
        CloudDriver {
            spec,
            instances: HashMap::new(),
            next_id: 0,
            active: 0,
            billed_ms: 0,
        }
    }

    /// Provider description.
    pub fn spec(&self) -> &ProviderSpec {
        &self.spec
    }

    /// Orders a new instance at `now`. It becomes ready after the
    /// provider's boot delay (the returned time).
    pub fn start_instance(&mut self, now: SimTime) -> Result<(InstanceId, SimTime), CloudError> {
        if let Some(cap) = self.spec.max_instances {
            if self.active >= cap {
                return Err(CloudError::CapacityExceeded);
            }
        }
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        let ready_at = now + self.spec.boot_delay;
        self.instances.insert(
            id.0,
            Instance {
                started_at: now,
                ready_at,
                stopped_at: None,
            },
        );
        self.active += 1;
        Ok((id, ready_at))
    }

    /// Stops an instance at `now`, closing its billing.
    pub fn stop_instance(&mut self, id: InstanceId, now: SimTime) -> Result<(), CloudError> {
        let inst = self
            .instances
            .get_mut(&id.0)
            .ok_or(CloudError::NoSuchInstance)?;
        if inst.stopped_at.is_some() {
            return Err(CloudError::AlreadyStopped);
        }
        inst.stopped_at = Some(now);
        self.billed_ms += now.since(inst.started_at).as_millis();
        self.active -= 1;
        Ok(())
    }

    /// Stops every active instance at `now`; returns how many were
    /// stopped.
    pub fn stop_all(&mut self, now: SimTime) -> u32 {
        let mut ids: Vec<u64> = self
            .instances
            // spq-lint: allow(det-unordered-iter) — ids are sorted below before any stateful use
            .iter()
            .filter(|(_, i)| i.stopped_at.is_none())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        let n = ids.len() as u32;
        for id in ids {
            let _ = self.stop_instance(InstanceId(id), now);
        }
        n
    }

    /// State of an instance at time `now`.
    pub fn state(&self, id: InstanceId, now: SimTime) -> Result<InstanceState, CloudError> {
        let inst = self
            .instances
            .get(&id.0)
            .ok_or(CloudError::NoSuchInstance)?;
        Ok(if inst.stopped_at.is_some() {
            InstanceState::Stopped
        } else if now < inst.ready_at {
            InstanceState::Booting
        } else {
            InstanceState::Running
        })
    }

    /// Instances currently active (booting or running).
    pub fn active_count(&self) -> u32 {
        self.active
    }

    /// Instances ever started.
    pub fn started_count(&self) -> u64 {
        self.next_id
    }

    /// Total billed CPU·hours as of `now` (closed billing plus the accrual
    /// of still-active instances).
    pub fn cpu_hours(&self, now: SimTime) -> f64 {
        let open_ms: u64 = self
            .instances
            // spq-lint: allow(det-unordered-iter) — u64 addition is commutative; any order sums the same
            .values()
            .filter(|i| i.stopped_at.is_none())
            .map(|i| now.since(i.started_at).as_millis())
            .sum();
        (self.billed_ms + open_ms) as f64 / 3_600_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> CloudDriver {
        CloudDriver::new(ProviderSpec::stratuslab())
    }

    #[test]
    fn start_boot_run_stop() {
        let mut d = driver();
        let t0 = SimTime::from_secs(100);
        let (id, ready) = d.start_instance(t0).expect("capacity");
        assert_eq!(ready, t0 + d.spec().boot_delay);
        assert_eq!(d.state(id, t0).unwrap(), InstanceState::Booting);
        assert_eq!(d.state(id, ready).unwrap(), InstanceState::Running);
        assert_eq!(d.active_count(), 1);
        d.stop_instance(id, SimTime::from_secs(4000)).expect("stop");
        assert_eq!(
            d.state(id, SimTime::from_secs(5000)).unwrap(),
            InstanceState::Stopped
        );
        assert_eq!(d.active_count(), 0);
        // Billed from order (t=100) to stop (t=4000): 3900 s.
        assert!((d.cpu_hours(SimTime::from_secs(9999)) - 3900.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn open_instances_accrue() {
        let mut d = driver();
        let (_, _) = d.start_instance(SimTime::ZERO).expect("ok");
        assert!((d.cpu_hours(SimTime::from_hours(2)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut d = CloudDriver::new(ProviderSpec::opennebula());
        let cap = d.spec().max_instances.unwrap();
        for _ in 0..cap {
            d.start_instance(SimTime::ZERO).expect("within cap");
        }
        assert_eq!(
            d.start_instance(SimTime::ZERO),
            Err(CloudError::CapacityExceeded)
        );
        // Stopping one frees a slot.
        d.stop_instance(InstanceId(0), SimTime::from_secs(60))
            .unwrap();
        assert!(d.start_instance(SimTime::from_secs(60)).is_ok());
    }

    #[test]
    fn double_stop_rejected() {
        let mut d = driver();
        let (id, _) = d.start_instance(SimTime::ZERO).unwrap();
        d.stop_instance(id, SimTime::from_secs(10)).unwrap();
        assert_eq!(
            d.stop_instance(id, SimTime::from_secs(20)),
            Err(CloudError::AlreadyStopped)
        );
    }

    #[test]
    fn stop_all_counts() {
        let mut d = driver();
        for _ in 0..5 {
            d.start_instance(SimTime::ZERO).unwrap();
        }
        assert_eq!(d.stop_all(SimTime::from_secs(30)), 5);
        assert_eq!(d.active_count(), 0);
        assert_eq!(d.started_count(), 5);
    }

    #[test]
    fn unknown_instance_errors() {
        let mut d = driver();
        assert_eq!(
            d.stop_instance(InstanceId(99), SimTime::ZERO),
            Err(CloudError::NoSuchInstance)
        );
        assert!(d.state(InstanceId(99), SimTime::ZERO).is_err());
    }
}
