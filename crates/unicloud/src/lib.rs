//! # unicloud — unified IaaS cloud simulator
//!
//! SpeQuloS provisions cloud workers through libcloud so that a single
//! code path drives Amazon EC2, Eucalyptus, Rackspace, OpenNebula,
//! StratusLab, Nimbus and even Grid'5000-as-a-cloud (paper §3.6–3.7).
//! This crate is the simulated counterpart: provider presets
//! ([`ProviderSpec`]) capturing what differs between services (boot
//! latency, power, capacity), and a [`CloudDriver`] implementing the
//! instance lifecycle with the CPU·hour metering the Credit System bills
//! from.
//!
//! ```
//! use simcore::SimTime;
//! use unicloud::{CloudDriver, ProviderSpec};
//!
//! let mut ec2 = CloudDriver::new(ProviderSpec::amazon_ec2());
//! let (vm, ready_at) = ec2.start_instance(SimTime::ZERO).unwrap();
//! assert!(ready_at > SimTime::ZERO); // instances take time to boot
//! ec2.stop_instance(vm, SimTime::from_hours(1)).unwrap();
//! assert!((ec2.cpu_hours(SimTime::from_hours(2)) - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod provider;

pub use driver::{CloudDriver, CloudError, InstanceId, InstanceState};
pub use provider::{ProviderSpec, Technology};
