//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Provides [`Mutex`] with `parking_lot` semantics — `lock()` returns the
//! guard directly instead of a poison `Result` — implemented over
//! [`std::sync::Mutex`]. A poisoned inner lock (a panicking holder) just
//! hands back the data, matching `parking_lot`'s no-poisoning behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A mutual-exclusion primitive with non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`]; derefs to the protected data.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected data.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
