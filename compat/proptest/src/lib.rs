//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no cargo registry access, so this local crate
//! provides exactly the surface the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! [`Just`], [`any`], range and tuple strategies, [`collection::vec`],
//! [`Strategy::prop_map`], [`ProptestConfig`] and [`TestCaseError`].
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic cases
//! (seeded from the test name, so runs are reproducible). There is no
//! shrinking — a failing case reports its index and message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic test RNG (splitmix64). Not for cryptographic use.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds the deterministic RNG for a named test (used by [`proptest!`]).
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the test name keeps different tests on different streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Marks the current case as failed with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for upstream parity.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-block configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy (subset of upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced values; upstream's full bit-pattern space
        // (NaN, infinities) is rarely what simulation tests want.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy for an arbitrary value of `T` (see [`any`]).
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the default strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform sampling over a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Sample uniformly from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                // i128 arithmetic sidesteps `hi + 1` overflow at type MAX;
                // the span of any <=64-bit type fits a u128.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        lo + rng.unit_f64() * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        // Include the upper endpoint by widening one ULP's worth of unit space.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Boxes a strategy for use in heterogeneous unions ([`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `vec(strategy, min..max)`: vectors with `min <= len < max`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed($strategy)),+])
    };
}

/// Defines property-test functions: each `arg in strategy` binding is
/// sampled per case and the body runs `ProptestConfig::cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, err
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(0.25f64..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let s = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)];
        let mut rng = crate::test_rng("union_and_map_compose");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }
}
