//! Offline, API-compatible subset of the `polling` crate (v2 API).
//!
//! Provides a [`Poller`]: register file descriptors with an interest
//! ([`Event`]), block in [`Poller::wait`] until one is ready, wake the
//! waiter from another thread with [`Poller::notify`]. Like upstream
//! `polling`, notifications are **oneshot**: delivering an event for a
//! source clears its interest, and the caller re-arms it with
//! [`Poller::modify`] before the next wait — the discipline that ports
//! unchanged to epoll/kqueue-backed upstream.
//!
//! The implementation is the portable lowest common denominator,
//! `poll(2)`: the registry is rebuilt into a `pollfd` array on every
//! wait, which is O(fds) per call but needs no OS-specific registration
//! state and comfortably services the thousands of connections the
//! `spq-server` reactor targets. Cross-thread wakeups use a self-pipe
//! (a non-blocking `UnixStream` pair) rather than `eventfd`, again for
//! portability.
//!
//! This is the **only** crate in the workspace allowed to use `unsafe`:
//! one `#[repr(C)]` struct and one documented `extern "C"` call to
//! `poll(2)` (std already links libc, so no external crate is needed).

#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

/// A readiness interest or a delivered readiness notification for the
/// source registered under `key`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier for the source (delivered back by
    /// [`Poller::wait`]).
    pub key: usize,
    /// Interest in (or occurrence of) read readiness.
    pub readable: bool,
    /// Interest in (or occurrence of) write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest: the source stays registered but produces no events
    /// until re-armed with [`Poller::modify`].
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// A registerable event source — anything exposing a raw file
/// descriptor. Mirrors the upstream trait: sockets and listeners
/// register as `&stream`, a raw fd registers as itself.
pub trait Source {
    /// The underlying descriptor.
    fn raw(&self) -> RawFd;
}

impl Source for RawFd {
    fn raw(&self) -> RawFd {
        *self
    }
}

impl<T: AsRawFd> Source for &T {
    fn raw(&self) -> RawFd {
        self.as_raw_fd()
    }
}

// ---------------------------------------------------------------------------
// poll(2) FFI
// ---------------------------------------------------------------------------

/// `struct pollfd` from `<poll.h>`, as the kernel ABI defines it.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    // std links the platform libc, so the symbol is always present;
    // declaring it here avoids depending on the `libc` crate (the build
    // environment has no registry access — see compat/README.md).
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Calls `poll(2)`, retrying on `EINTR`.
fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd records for the duration of the call, the
        // length is passed alongside the pointer, and poll(2) writes only
        // the `revents` fields within that slice.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

/// Per-source registration state.
#[derive(Clone, Copy)]
struct Registration {
    key: usize,
    readable: bool,
    writable: bool,
}

/// A readiness poller over registered file descriptors. See the
/// [module docs](self) for semantics (oneshot delivery, self-pipe
/// wakeups).
pub struct Poller {
    registry: Mutex<HashMap<RawFd, Registration>>,
    /// Self-pipe: `notify` writes one byte to `wake_tx`; `wait` includes
    /// `wake_rx` in the poll set and drains it. Both ends non-blocking.
    wake_rx: UnixStream,
    wake_tx: UnixStream,
}

impl Poller {
    /// Creates a poller with an empty registry.
    pub fn new() -> io::Result<Poller> {
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        Ok(Poller {
            registry: Mutex::new(HashMap::new()),
            wake_rx,
            wake_tx,
        })
    }

    /// Registers `source` with an initial interest. Re-adding an already
    /// registered descriptor is an error (upstream parity).
    pub fn add(&self, source: impl Source, interest: Event) -> io::Result<()> {
        let fd = source.raw();
        let mut registry = self.registry.lock().expect("poller registry");
        if registry.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} is already registered"),
            ));
        }
        registry.insert(
            fd,
            Registration {
                key: interest.key,
                readable: interest.readable,
                writable: interest.writable,
            },
        );
        Ok(())
    }

    /// Replaces the interest (and key) of a registered `source` — the
    /// re-arm half of the oneshot contract.
    pub fn modify(&self, source: impl Source, interest: Event) -> io::Result<()> {
        let fd = source.raw();
        let mut registry = self.registry.lock().expect("poller registry");
        match registry.get_mut(&fd) {
            Some(reg) => {
                *reg = Registration {
                    key: interest.key,
                    readable: interest.readable,
                    writable: interest.writable,
                };
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )),
        }
    }

    /// Deregisters `source`; its pending events are discarded.
    pub fn delete(&self, source: impl Source) -> io::Result<()> {
        let fd = source.raw();
        self.registry
            .lock()
            .expect("poller registry")
            .remove(&fd)
            .map(|_| ())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("fd {fd} is not registered"),
                )
            })
    }

    /// Blocks until at least one registered source is ready, the timeout
    /// elapses, or [`Poller::notify`] is called; appends the delivered
    /// events to `events` and returns how many were appended.
    ///
    /// A return of `Ok(0)` is a timeout or a bare notification — both
    /// legitimate, callers just loop. Delivered sources have their
    /// interest cleared (oneshot) and must be re-armed with
    /// [`Poller::modify`]. Error conditions on a source (`POLLERR`,
    /// `POLLHUP`, `POLLNVAL`) are delivered as ready-for-everything the
    /// caller asked about, so the next read/write observes the failure.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut fds: Vec<PollFd> = Vec::new();
        fds.push(PollFd {
            fd: self.wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        {
            let registry = self.registry.lock().expect("poller registry");
            fds.reserve(registry.len());
            for (&fd, reg) in registry.iter() {
                let mut mask = 0i16;
                if reg.readable {
                    mask |= POLLIN;
                }
                if reg.writable {
                    mask |= POLLOUT;
                }
                if mask != 0 {
                    fds.push(PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    });
                }
            }
        }

        let timeout_ms = match timeout {
            None => -1,
            // Round sub-millisecond remainders up so a tiny timeout never
            // becomes a hot 0 ms spin; saturate far-future timeouts.
            Some(t) => {
                let ms = t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0));
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        let ready = sys_poll(&mut fds, timeout_ms)?;
        if ready == 0 {
            return Ok(0);
        }

        // Drain the self-pipe (coalesces any number of notify() calls).
        if fds[0].revents != 0 {
            let mut sink = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }

        let mut delivered = 0;
        let mut registry = self.registry.lock().expect("poller registry");
        for pfd in &fds[1..] {
            if pfd.revents == 0 {
                continue;
            }
            // The source may have been deleted while poll(2) ran.
            let Some(reg) = registry.get_mut(&pfd.fd) else {
                continue;
            };
            let failed = pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
            let event = Event {
                key: reg.key,
                readable: reg.readable && (pfd.revents & POLLIN != 0 || failed),
                writable: reg.writable && (pfd.revents & POLLOUT != 0 || failed),
            };
            if !event.readable && !event.writable {
                continue;
            }
            // Oneshot: disarm until the caller re-arms via modify().
            reg.readable = false;
            reg.writable = false;
            events.push(event);
            delivered += 1;
        }
        Ok(delivered)
    }

    /// Wakes a concurrent [`Poller::wait`] call (it returns with no
    /// events). Callable from any thread; coalesces.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.wake_tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            // A full pipe means a wakeup is already pending — good enough.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fds = self.registry.lock().map(|r| r.len()).unwrap_or(0);
        f.debug_struct("Poller").field("sources", &fds).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn readable_event_is_delivered_once_then_rearmed() {
        let poller = Poller::new().expect("poller");
        let (mut a, b) = UnixStream::pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        poller.add(&b, Event::readable(7)).expect("add");

        a.write_all(b"x").expect("write");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0], Event::readable(7));

        // Oneshot: without re-arming, the still-readable socket produces
        // nothing more.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("wait");
        assert_eq!(n, 0, "disarmed source must stay silent");

        // Re-armed, it fires again.
        poller.modify(&b, Event::readable(7)).expect("modify");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
    }

    #[test]
    fn notify_wakes_a_blocked_wait_with_zero_events() {
        let poller = std::sync::Arc::new(Poller::new().expect("poller"));
        let waker = std::sync::Arc::clone(&poller);
        let waiter = std::thread::spawn(move || {
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .expect("wait")
        });
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        waker.notify().expect("notify");
        let delivered = waiter.join().expect("join");
        assert_eq!(delivered, 0, "a bare notification carries no events");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wakeup was prompt"
        );
    }

    #[test]
    fn writable_interest_and_delete_work() {
        let poller = Poller::new().expect("poller");
        let (a, _b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).expect("nonblocking");
        poller.add(&a, Event::writable(3)).expect("add");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1, "an idle socket is writable");
        assert_eq!(events[0], Event::writable(3));

        poller.delete(&a).expect("delete");
        assert!(poller.delete(&a).is_err(), "double delete is reported");
        assert!(
            poller.modify(&a, Event::all(3)).is_err(),
            "modifying a deleted source is reported"
        );
    }

    #[test]
    fn double_add_is_rejected() {
        let poller = Poller::new().expect("poller");
        let (a, _b) = UnixStream::pair().expect("pair");
        poller.add(&a, Event::none(1)).expect("add");
        assert!(poller.add(&a, Event::none(2)).is_err());
    }

    #[test]
    fn timeout_expires_without_events() {
        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait");
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
