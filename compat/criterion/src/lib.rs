//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no cargo registry access, so this local crate
//! implements the surface the workspace's `harness = false` bench targets
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up once,
//! then timed over `sample_size` samples, and a mean per-iteration wall
//! time is printed. Statistical rigour (outlier analysis, HTML reports) is
//! out of scope — the goal is that `cargo bench` runs, produces numbers,
//! and catches perf-path bitrot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How setup output is batched in [`Bencher::iter_batched`]; all variants
/// behave identically here (one setup per timed iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Accumulated (total_time, iterations) for reporting.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` over this bencher's sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up run keeps cold-start effects out of the measurement.
        let _ = routine();
        let iters = self.samples as u64;
        let start = Instant::now();
        for _ in 0..iters {
            let _ = routine();
        }
        self.measured = Some((start.elapsed(), iters));
    }

    /// Times `routine` on fresh input from `setup` each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = routine(setup());
        let iters = self.samples as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            let _ = routine(input);
            total += start.elapsed();
        }
        self.measured = Some((total, iters));
    }
}

fn report(name: &str, measured: Option<(Duration, u64)>) {
    match measured {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total.as_secs_f64() / iters as f64;
            println!(
                "bench: {name:<50} {:>12.3} ms/iter ({iters} iters)",
                per_iter * 1e3
            );
        }
        _ => println!("bench: {name:<50} (no measurement)"),
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    // Group-scoped, as upstream: must not leak into the parent past finish().
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        self.criterion.run_one(&full, samples, f);
        self
    }

    /// Ends the group (kept for upstream API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, samples: usize, mut f: F) {
        let mut b = Bencher {
            samples,
            measured: None,
        };
        f(&mut b);
        report(name, b.measured);
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.sample_size;
        self.run_one(id, samples, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Final configuration hook (kept for upstream API parity).
    pub fn final_summary(&mut self) {}
}

/// Re-export of [`std::hint::black_box`], as upstream provides.
pub use std::hint::black_box;

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).sum()
    }

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        c.bench_function("sum", |b| b.iter(|| black_box(sum_to(1000))));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(|| 100u64, |n| black_box(sum_to(n)), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn group_sample_size_does_not_leak() {
        let mut c = Criterion::default();
        let mut grouped_runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("inner", |b| b.iter(|| grouped_runs += 1));
            g.finish();
        }
        assert_eq!(grouped_runs, 4, "1 warm-up + 3 samples");
        let mut standalone_runs = 0;
        c.bench_function("outer", |b| b.iter(|| standalone_runs += 1));
        assert_eq!(standalone_runs, 11, "1 warm-up + default 10 samples");
    }
}
