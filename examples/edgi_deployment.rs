//! The EDGI-like composite deployment of paper §5 (Fig. 8, Table 5).
//!
//! Two XtremWeb-HEP desktop grids — XW@LRI harvesting a Grid'5000-like
//! best-effort cluster with an EC2-like supporting cloud, and XW@LAL on a
//! campus desktop grid with a StratusLab-like cloud — share one SpeQuloS
//! service. Part of the XW@LAL workload arrives through the 3G-Bridge
//! from an EGI-like grid, and still benefits from QoS support: "BoTs
//! submitted through XtremWeb-HEP to EGI can eventually benefit from the
//! QoS support provided by SpeQuloS using resources from StratusLab".
//!
//! Run with: `cargo run --release --example edgi_deployment`

use spq_harness::run_edgi;

fn main() {
    println!("EDGI-like deployment (paper §5)");
    println!("===============================\n");
    let report = run_edgi(7, 3, 0.5);

    println!("{:<34} {:>10}", "infrastructure", "# tasks");
    println!("{}", "-".repeat(46));
    for (name, count) in [
        ("XW@LAL (campus desktop grid)", report.lal_tasks),
        ("XW@LRI (best-effort grid)", report.lri_tasks),
        ("EGI (bridged into XW@LAL)", report.egi_tasks),
        ("StratusLab (cloud via SpeQuloS)", report.stratuslab_tasks),
        ("Amazon EC2 (cloud via SpeQuloS)", report.ec2_tasks),
    ] {
        println!("{name:<34} {count:>10}");
    }
    println!(
        "\ncloud consumption: StratusLab {:.2} CPU·h, EC2 {:.2} CPU·h",
        report.stratuslab_cpu_hours, report.ec2_cpu_hours
    );

    println!("\nper-BoT executions:");
    for (label, completed, secs, credits) in &report.bots {
        println!(
            "  {label:<28} {}  completion {:>9.0} s  credits spent {:>7.1}",
            if *completed { "ok " } else { "STUCK" },
            secs,
            credits
        );
    }

    println!(
        "\nShape check vs Table 5: DG-native tasks dominate, bridged EGI tasks are a\n\
         minority, and cloud-assigned tasks are a small fraction of the total —\n\
         the cloud only absorbs each BoT's tail."
    );
}
