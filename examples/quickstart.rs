//! Quickstart: one QoS-supported BoT execution, end to end.
//!
//! Replays the paper's Fig. 3 sequence — `registerQoS` → `orderQoS` →
//! monitoring → prediction → cloud burst → billing → `pay` — on a
//! simulated Grid'5000-like best-effort cluster running XtremWeb-HEP,
//! then prints the protocol log and the QoS outcome.
//!
//! Run with: `cargo run --release --example quickstart`

use betrace::Preset;
use botwork::BotClass;
use spequlos::{protocol, LogEvent, SpeQuloS, StrategyCombo, UserId, CREDITS_PER_CPU_HOUR};
use spq_harness::{Experiment, MwKind, Scenario};

fn main() {
    // A SMALL BoT (1000 × 1h tasks) on a churny best-effort cluster.
    let mut scenario = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Small, 42)
        .with_strategy(StrategyCombo::paper_default());
    scenario.scale = 0.5;

    println!("SpeQuloS quickstart");
    println!("===================");
    println!("environment : {}", scenario.env());
    println!("strategy    : {}", StrategyCombo::paper_default());
    let bot = spq_harness::bot_of(&scenario);
    println!(
        "BoT         : {} tasks, {:.0} CPU·h workload, credits = 10% = {:.0} credits\n",
        bot.size(),
        bot.workload_cpu_hours(),
        0.10 * bot.workload_cpu_hours() * CREDITS_PER_CPU_HOUR,
    );

    // Paired execution: the same seed with and without SpeQuloS.
    let paired = Experiment::new(scenario.clone()).paired().run_paired();

    println!(
        "without SpeQuloS : completed in {:>8.0} s",
        paired.baseline.completion_secs
    );
    println!(
        "with SpeQuloS    : completed in {:>8.0} s",
        paired.speq.completion_secs
    );
    println!("speed-up         : {:.2}×", paired.speedup);
    if let Some(tre) = paired.tre {
        println!("tail removal     : {:.0}%", tre * 100.0);
    }
    if let Some(tail) = &paired.baseline.tail {
        println!(
            "baseline tail    : slowdown {:.2}, {:.1}% of tasks, {:.1}% of time",
            tail.slowdown,
            tail.frac_bot_in_tail * 100.0,
            tail.frac_time_in_tail * 100.0
        );
    }
    println!(
        "cloud usage      : {} workers, {:.2} CPU·h, {:.1} of {:.0} credits spent ({:.1}% of workload offloaded)\n",
        paired.speq.cloud.workers_started,
        paired.speq.cloud.cpu_hours,
        paired.speq.credits_spent,
        paired.speq.credits_provisioned,
        paired.speq.cloud_work_fraction * 100.0,
    );

    // Replay the protocol (Fig. 3) on a fresh service to show the module
    // interactions, including a mid-run prediction.
    println!("protocol walk-through (Fig. 3)");
    println!("------------------------------");
    let mut service = SpeQuloS::new();
    let user = UserId(1);
    service.credits.deposit(user, 10_000.0);
    let (metrics, service) = {
        let mut sc = scenario.clone();
        sc.seed = 43;
        Experiment::new(sc).service(service).run_qos()
    };
    let _ = user;
    for (t, ev) in service.log() {
        let line = match ev {
            LogEvent::RegisterQos { bot, env } => format!("user -> scheduler : registerQoS({env}) = {bot}"),
            LogEvent::OrderQos { bot, credits } => {
                format!("user -> credit    : orderQoS({bot}, {credits:.0} credits)")
            }
            LogEvent::Predicted {
                bot,
                completion_secs,
                success_rate,
            } => format!(
                "user <- oracle    : prediction({bot}) = {completion_secs:.0}s (history success: {})",
                success_rate.map(|r| format!("{:.0}%", r * 100.0)).unwrap_or_else(|| "n/a".into())
            ),
            LogEvent::StartCloudWorkers { bot, count } => {
                format!("scheduler -> cloud: startCloudWorkers({bot}) × {count}")
            }
            LogEvent::StopCloudWorkers { bot } => format!("scheduler -> cloud: stopCloudWorkers({bot})"),
            LogEvent::Completed { bot } => format!("infrastructure    : {bot} completed"),
            LogEvent::Paid { bot, refund } => {
                format!("credit system     : pay({bot}), refund {refund:.1} credits")
            }
            LogEvent::Throttled {
                bot,
                requested,
                granted,
            } => format!(
                "pool arbiter      : throttled({bot}) {granted}/{requested} workers granted"
            ),
        };
        println!("  t={:>7.0}s  {line}", t.as_secs_f64());
    }
    println!(
        "\nsecond run completed in {:.0} s using {:.1} credits",
        metrics.completion_secs, metrics.credits_spent
    );

    // The same log as a wire-format transcript (spequlos::protocol): a
    // diffable JSON document any frontend can decode and replay.
    let transcript = protocol::encode_log(service.log());
    let decoded = protocol::decode_log(&transcript).expect("own transcript decodes");
    assert_eq!(decoded.as_slice(), service.log(), "lossless round-trip");
    println!(
        "\nJSON transcript: {} events, {} bytes; first entries:",
        service.log().len(),
        transcript.len()
    );
    for line in transcript.lines().skip(1).take(3) {
        println!("  {}", line.trim_end_matches(','));
    }
}
