//! Working with BE-DCI availability traces (paper §2.1, §4.1.1, Table 2).
//!
//! Shows the trace substrate as a standalone tool: build a calibrated
//! synthetic infrastructure, audit its statistics against the published
//! Table 2 values, export it to the `betrace v1` text format, and load it
//! back (the same path users would take to run the reproduction on real
//! Failure-Trace-Archive-derived interval data).
//!
//! Run with: `cargo run --release --example trace_toolkit`

use betrace::{fta, measure, Preset, SimDuration, SimTime};

fn main() {
    println!("BE-DCI trace toolkit");
    println!("====================\n");

    // 1. Audit each preset against its published statistics.
    println!(
        "{:<8} {:>7} {:>12} {:>14} {:>24} {:>24}",
        "trace", "slots", "mean nodes", "(published)", "avail q25/q50/q75", "unavail q25/q50/q75"
    );
    for preset in Preset::ALL {
        let spec = preset.spec();
        let dci = spec.build(2024, 1.0);
        let stats = measure(&dci, SimDuration::from_days(3), SimDuration::from_secs(300));
        let q = |q: Option<simcore::Quartiles>| {
            q.map(|q| format!("{:.0}/{:.0}/{:.0}", q.q25, q.q50, q.q75))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<8} {:>7} {:>12.0} {:>14.0} {:>24} {:>24}",
            spec.name,
            dci.node_count(),
            stats.nodes_mean,
            spec.nodes_mean,
            q(stats.avail_quartiles),
            q(stats.unavail_quartiles),
        );
    }

    // 2. Export a small infrastructure to the text format and reload it.
    let dci = Preset::G5kLyon.spec().build(7, 0.1);
    let horizon = SimTime::from_hours(6);
    let text = fta::to_text(&dci, horizon);
    println!(
        "\nexported {} nodes over 6h -> {} bytes of `betrace v1` text",
        dci.node_count(),
        text.len()
    );
    let reloaded = fta::from_text(&text).expect("own export must parse");
    assert_eq!(reloaded.node_count(), dci.node_count());
    println!(
        "reloaded: {} nodes, kind {:?}",
        reloaded.node_count(),
        reloaded.kind
    );

    // First lines of the export, as documentation of the format.
    println!("\nformat sample:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }

    // 3. Availability fractions per node (the churn SpeQuloS fights).
    let fracs: Vec<f64> = dci
        .timelines
        .iter()
        .map(|tl| tl.clone().availability_fraction(horizon))
        .collect();
    println!(
        "\nper-node availability over 6h: min {:.2}  mean {:.2}  max {:.2}",
        fracs.iter().cloned().fold(f64::INFINITY, f64::min),
        simcore::mean(&fracs),
        fracs.iter().cloned().fold(0.0, f64::max),
    );
}
