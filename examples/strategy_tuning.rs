//! Comparing cloud-provisioning strategies on one environment
//! (paper §3.5 / §4.2).
//!
//! Runs a handful of strategy combinations on the same volatile desktop
//! grid and prints the trade-off the paper's Figs. 4–5 quantify: the
//! Reschedule and Cloud-Duplication deployments remove most of the tail,
//! Flat struggles, and credit consumption stays a small fraction of the
//! provision.
//!
//! Run with: `cargo run --release --example strategy_tuning`

use betrace::Preset;
use botwork::BotClass;
use spequlos::StrategyCombo;
use spq_harness::{parallel_map, Experiment, MwKind, Scenario};

fn main() {
    let combos = ["9C-C-F", "9C-C-R", "9C-C-D", "9A-G-R", "9A-G-D", "D-C-R"];
    let seeds: Vec<u64> = (1..=4).collect();

    println!("Strategy comparison on nd/XWHEP/SMALL (volatile campus desktop grid)");
    println!("====================================================================\n");
    println!(
        "{:<8} {:>5} {:>12} {:>12} {:>9} {:>10} {:>8}",
        "combo", "runs", "base(s)", "speq(s)", "speedup", "TRE(med)", "%credit"
    );

    for name in combos {
        let combo = StrategyCombo::parse(name).expect("valid combo name");
        let scenarios: Vec<Scenario> = seeds
            .iter()
            .map(|&seed| {
                let mut sc = Scenario::new(Preset::NotreDame, MwKind::Xwhep, BotClass::Small, seed)
                    .with_strategy(combo);
                sc.scale = 1.0;
                sc
            })
            .collect();
        let runs = parallel_map(&scenarios, 0, |sc| {
            Experiment::new(sc.clone()).paired().run_paired()
        });
        let base: Vec<f64> = runs.iter().map(|r| r.baseline.completion_secs).collect();
        let speq: Vec<f64> = runs.iter().map(|r| r.speq.completion_secs).collect();
        let tres: Vec<f64> = runs.iter().filter_map(|r| r.tre).collect();
        let credit: Vec<f64> = runs
            .iter()
            .filter(|r| r.speq.credits_provisioned > 0.0)
            .map(|r| r.speq.credits_spent / r.speq.credits_provisioned)
            .collect();
        let median_tre = if tres.is_empty() {
            "-".to_string()
        } else {
            format!("{:.0}%", 100.0 * simcore::Cdf::new(tres).quantile(0.5))
        };
        println!(
            "{:<8} {:>5} {:>12.0} {:>12.0} {:>8.2}x {:>10} {:>7.1}%",
            name,
            runs.len(),
            simcore::mean(&base),
            simcore::mean(&speq),
            simcore::mean(&base) / simcore::mean(&speq).max(1.0),
            median_tre,
            100.0 * simcore::mean(&credit),
        );
    }

    println!(
        "\nReading: the paper selects 9C-C-R as \"a good compromise between Tail Removal\n\
         Efficiency performance, credits consumption and ease of implementation\" (§4.3)."
    );
}
