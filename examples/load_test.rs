//! Load-testing quickstart: open-loop load with an SLO verdict, in five
//! steps.
//!
//! The deployed SpeQuloS is a network service the middleware calls every
//! monitoring period (paper §3), so "how many monitoring ticks per
//! second can one service absorb before its tail latency blows the
//! budget?" is an operational question. This example answers it the way
//! `repro_load` does, but small enough to read in one sitting:
//!
//! 1. record a real session's request mix,
//! 2. derive a deterministic open-loop arrival plan from a seed,
//! 3. serve a SpeQuloS on loopback TCP,
//! 4. fire the plan and collect the latency histogram,
//! 5. sweep the rate ladder for the max sustained rate under the SLO.
//!
//! Run with: `cargo run --release --example load_test`

use spequlos::SpeQuloS;
use spq_bench::loadgen::{self, max_sustained_rate, ArrivalPlan, ArrivalSpec, LoadReport};
use spq_server::Server;

const SLO_P99_MS: f64 = 50.0;

fn show(rate: f64, report: &LoadReport) {
    println!(
        "  {rate:>6.0} req/s offered | p50 {:>7.3} ms | p99 {:>7.3} ms | p999 {:>7.3} ms | {} errors, {} timeouts",
        report.p50_ms(),
        report.p99_ms(),
        report.p999_ms(),
        report.errors,
        report.timeouts,
    );
}

fn main() -> std::io::Result<()> {
    println!("spq-load in five steps");
    println!("======================");

    // --- 1. The workload shape: a recorded session's request mix. ------
    // A real QoS-enabled execution is mostly monitoring: one deposit /
    // register / order / complete, and a ReportProgress every tick.
    let mix = loadgen::recorded_mix();
    println!("recorded mix: {}", mix.describe());

    // --- 2. A deterministic open-loop schedule. ------------------------
    // Same spec + mix = bit-identical plan; only the measured latencies
    // differ between runs. Requests fire at their scheduled instants
    // whether or not earlier replies returned — a server that falls
    // behind shows up as a growing tail, not as a lower offered rate.
    let spec = ArrivalSpec {
        rate: 500.0,
        connections: 2,
        warmup_secs: 0.2,
        measured_secs: 1.0,
        seed: 7,
    };
    let plan = ArrivalPlan::generate(spec, &mix);
    println!(
        "plan: {} requests over {:.1}s ({:.0} req/s offered)",
        plan.len(),
        spec.warmup_secs + spec.measured_secs,
        plan.offered_rate()
    );

    // --- 3 + 4. A live loopback server, and the run itself. ------------
    let handle = Server::spawn_loopback(SpeQuloS::new())?;
    let report = loadgen::run(handle.addr(), &plan)?;
    println!("\nprimary run:");
    show(spec.rate, &report);
    drop(handle.into_service());

    // --- 5. The sweep: find the SLO knee. ------------------------------
    // Fresh server per step so queue buildup never leaks across rates.
    println!("\nrate sweep (SLO: p99 <= {SLO_P99_MS} ms):");
    let mut steps = Vec::new();
    for rate in loadgen::sweep_ladder(spec.rate, 5) {
        let handle = Server::spawn_loopback(SpeQuloS::new())?;
        let plan = ArrivalPlan::generate(ArrivalSpec { rate, ..spec }, &mix);
        let report = loadgen::run(handle.addr(), &plan)?;
        drop(handle.into_service());
        show(rate, &report);
        steps.push((rate, report));
    }
    match max_sustained_rate(&steps, SLO_P99_MS) {
        Some(rate) => println!("\nmax sustained rate under the SLO: {rate:.0} req/s"),
        None => println!("\nno swept rate met the SLO"),
    }
    Ok(())
}
