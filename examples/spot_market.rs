//! Cloud spot instances as a best-effort infrastructure (paper §2.1,
//! §4.1.1).
//!
//! Demonstrates the spot-market substrate: a synthetic price process, the
//! paper's persistent bid ladder (n bids at S/i for a constant total
//! renting cost S), the resulting instance churn, and a BoT execution on
//! the spot infrastructure with and without SpeQuloS.
//!
//! Run with: `cargo run --release --example spot_market`

use betrace::{BidLadder, MarketParams, Preset, PricePath, SimDuration, SimTime};
use botwork::BotClass;
use simcore::Prng;
use spequlos::StrategyCombo;
use spq_harness::{Experiment, MwKind, Scenario};

fn main() {
    println!("Spot-market best-effort infrastructure");
    println!("======================================\n");

    // 1. The price process and bid ladder.
    let params = MarketParams::default();
    let mut rng = Prng::stream(11, "spot-market");
    let path = PricePath::generate(&params, SimDuration::from_days(7), &mut rng);
    let ladder = BidLadder {
        total_cost: 10.0,
        n: 87,
    };
    println!(
        "bid ladder: total cost S = ${}/h over {} bids (bid_i = S/i)",
        10, 87
    );
    println!(
        "first bids: {:.2} {:.2} {:.2} ... last bid: {:.3}\n",
        ladder.bid(1),
        ladder.bid(2),
        ladder.bid(3),
        ladder.bid(87)
    );
    println!("hour  price($)  instances running");
    for h in (0..7 * 24).step_by(6) {
        let t = SimTime::from_hours(h);
        let price = path.price_at(t);
        let n = ladder.running_at_price(price);
        println!(
            "{h:>4}  {price:>8.3}  {n:>3} {}",
            "*".repeat((n / 2) as usize)
        );
    }

    // 2. A BoT on spot instances, with and without SpeQuloS.
    println!("\nBoT execution on spot10 (XWHEP, RANDOM class)");
    println!("---------------------------------------------");
    let scenario = Scenario::new(Preset::Spot10, MwKind::Xwhep, BotClass::Random, 5)
        .with_strategy(StrategyCombo::paper_default());
    let paired = Experiment::new(scenario).paired().run_paired();
    println!(
        "without SpeQuloS: {:>8.0} s (tail slowdown {:.2})",
        paired.baseline.completion_secs,
        paired.baseline.tail.map(|t| t.slowdown).unwrap_or(1.0)
    );
    println!(
        "with SpeQuloS   : {:>8.0} s ({} cloud workers, {:.1}% of credits spent)",
        paired.speq.completion_secs,
        paired.speq.cloud.workers_started,
        100.0 * paired.speq.credits_spent / paired.speq.credits_provisioned.max(1e-9),
    );
    println!("speed-up        : {:.2}×", paired.speedup);
    if let Some(tre) = paired.tre {
        println!("tail removal    : {:.0}%", tre * 100.0);
    } else {
        println!("tail removal    : n/a (baseline had no measurable tail)");
    }
}
