//! Multi-tenant service demo: six users, one SpeQuloS instance, one
//! bounded cloud-worker pool.
//!
//! Each tenant runs its own BoT on its own best-effort infrastructure;
//! they couple only through the service — the shared credit economy,
//! admission control on `orderQoS`, and credit-proportional fair-share
//! arbitration of the pool (with the network-of-favors ledger as
//! tie-breaker). The demo prints the per-tenant outcome table and the
//! arbitration events from the shared protocol log.
//!
//! Run with: `cargo run --release --example multi_tenant`

use betrace::Preset;
use botwork::BotClass;
use simcore::SimDuration;
use spequlos::{LogEvent, StrategyCombo};
use spq_harness::{Experiment, MwKind, Scenario, TenantArrivals};

fn main() {
    let mut base = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, 7)
        .with_strategy(StrategyCombo::paper_default());
    base.scale = 0.3;

    // Six tenants arriving over one hour, competing for six cloud workers.
    let (tenants, pool) = (6, 6);
    let exp = Experiment::new(base)
        .tenants(tenants)
        .pool(pool)
        .arrivals(TenantArrivals::Uniform {
            window: SimDuration::from_hours(1),
        });

    println!("SpeQuloS multi-tenant demo");
    println!("==========================");
    println!("{tenants} tenants, pool of {pool} cloud workers, uniform arrivals over 1 h\n");

    let report = exp.run_multi_tenant();
    println!("tenant  admitted  completed  makespan(s)  spent  granted  denied");
    for t in &report.tenants {
        // completion_secs is absolute shared-clock time; the tenant's own
        // makespan starts at its arrival offset.
        let makespan = (t.metrics.completion_secs - t.offset.as_secs_f64()).max(0.0);
        println!(
            "{:>6}  {:>8}  {:>9}  {:>11.0}  {:>5.1}  {:>7}  {:>6}",
            t.tenant,
            if t.admitted { "yes" } else { "no" },
            if t.metrics.completed { "yes" } else { "no" },
            makespan,
            t.metrics.credits_spent,
            t.qos.granted,
            t.qos.denied,
        );
    }
    println!(
        "\npool peak: {}/{} workers · {} simulation events",
        report.peak_pool_in_use, report.pool_capacity, report.events
    );

    println!("\narbitration log (shared service)");
    println!("--------------------------------");
    for (t, ev) in report.service.log() {
        let line = match ev {
            LogEvent::Throttled {
                bot,
                requested,
                granted,
            } => format!("{bot}: {granted}/{requested} workers granted"),
            LogEvent::StartCloudWorkers { bot, count } => {
                format!("{bot}: started {count} cloud workers")
            }
            LogEvent::StopCloudWorkers { bot } => format!("{bot}: fleet stopped"),
            _ => continue,
        };
        println!("  t={:>7.0}s  {line}", t.as_secs_f64());
    }
}
