//! Remote-service quickstart: SpeQuloS behind a TCP port, end to end.
//!
//! The paper deploys SpeQuloS as web services the middleware calls over
//! the network (§3, Fig. 3). This example is that deployment over
//! loopback: it spawns a `spq-server`, speaks a few protocol frames by
//! hand, then runs the full quickstart scenario twice — in-process and
//! through a `RemoteService` connection — and asserts the two runs are
//! bit-identical (same completion time, same billing, same protocol log).
//!
//! Run with: `cargo run --release --example remote_service`

use betrace::Preset;
use botwork::BotClass;
use simcore::SimTime;
use spequlos::protocol::{Request, Response, SpqService};
use spequlos::{protocol, SpeQuloS, StrategyCombo, UserId};
use spq_harness::{Experiment, MwKind, Scenario};
use spq_server::{RemoteService, Server};

fn main() {
    println!("SpeQuloS over the wire");
    println!("======================");

    // --- 1. A serviced port: the paper's "SpeQuloS web services". -------
    let handle = Server::spawn_loopback(SpeQuloS::new()).expect("bind a loopback port");
    println!("server listening on {}", handle.addr());

    // --- 2. A few raw protocol exchanges through a RemoteService. -------
    let mut remote = RemoteService::connect(handle.addr()).expect("connect");
    let user = UserId(1);
    let deposited = remote.handle(
        Request::Deposit {
            user,
            credits: 1_000.0,
        },
        SimTime::ZERO,
    );
    println!("deposit      -> {deposited:?}");
    let registered = remote.handle(
        Request::RegisterQos {
            user,
            env: "seti/XWHEP/SMALL".into(),
            size: 100,
        },
        SimTime::ZERO,
    );
    println!("registerQoS  -> {registered:?}");
    let Response::Registered { bot } = registered else {
        panic!("registration is unconditional");
    };
    // Pipelining: order + first prediction ask in ONE frame.
    let batched = remote.handle_batch(
        vec![
            Request::OrderQos {
                bot,
                credits: 150.0,
                strategy: Some(StrategyCombo::paper_default()),
            },
            Request::Predict { bot },
        ],
        SimTime::ZERO,
    );
    println!("batch of 2   -> {batched:?}");
    drop(remote);
    let walkthrough = handle.into_service();
    println!(
        "recovered service: balance {} credits, {} log events\n",
        walkthrough.credits.balance(user),
        walkthrough.log().len()
    );

    // --- 3. The full quickstart scenario, local vs loopback. ------------
    let mut sc = Scenario::new(Preset::G5kLyon, MwKind::Xwhep, BotClass::Big, 42)
        .with_strategy(StrategyCombo::paper_default());
    sc.scale = 0.4;
    println!("scenario     : {} (seed {})", sc.env(), sc.seed);

    let (local, local_svc) = Experiment::new(sc.clone()).run_qos();
    let (over_tcp, remote_svc) = Experiment::new(sc).loopback().run_qos();

    println!(
        "in-process   : completed in {:>8.0} s, {:.1} credits, {} events",
        local.completion_secs, local.credits_spent, local.events
    );
    println!(
        "over loopback: completed in {:>8.0} s, {:.1} credits, {} events",
        over_tcp.completion_secs, over_tcp.credits_spent, over_tcp.events
    );

    // The wire must change nothing but latency: pin the equality.
    assert_eq!(local.completion_secs, over_tcp.completion_secs);
    assert_eq!(local.events, over_tcp.events);
    assert_eq!(local.credits_spent, over_tcp.credits_spent);
    assert_eq!(local.cloud, over_tcp.cloud);
    assert_eq!(
        protocol::encode_log(local_svc.log()),
        protocol::encode_log(remote_svc.log()),
        "protocol transcripts byte-identical"
    );
    println!(
        "\ntransports agree bit-for-bit ({} log events)",
        local_svc.log().len()
    );
}
