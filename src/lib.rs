//! # spequlos-repro — umbrella crate for the SpeQuloS reproduction
//!
//! Re-exports every crate of the workspace so the examples and
//! integration tests (and downstream users who want the whole stack) can
//! depend on a single package. See the individual crates for the real
//! APIs:
//!
//! * [`spequlos`] — the paper's contribution: the QoS service itself;
//! * [`spq_server`] — the wire deployment: framed TCP transport serving
//!   the protocol, plus the `RemoteService` client;
//! * [`spq_bench`] — reproduction binaries, perf telemetry and the
//!   `spq-load` open-loop load generator (`spq_bench::loadgen`);
//! * [`dgrid`] — BOINC / XtremWeb-HEP middleware simulators;
//! * [`betrace`] — BE-DCI availability trace generators (Table 2);
//! * [`botwork`] — Bag-of-Tasks workloads (Table 3);
//! * [`unicloud`] — IaaS cloud simulator (libcloud counterpart);
//! * [`simcore`] — deterministic discrete-event kernel;
//! * [`spq_harness`] — scenario runner, paired executions, sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use betrace;
pub use botwork;
pub use dgrid;
pub use simcore;
pub use spequlos;
pub use spq_bench;
pub use spq_harness;
pub use spq_server;
pub use unicloud;
